// Package components implements the paper's case-study application (Fig. 2)
// as CCA components: ShockDriver orchestrating the simulation, AMRMesh
// managing the SAMR patches (and all message passing), RK2 driving the
// recursive level processing, InviscidFlux composing the per-patch flux
// evaluation out of the States and EFMFlux/GodunovFlux components, plus the
// PMM components — TauMeasurement, Mastermind, and the proxies (sc_proxy,
// g_proxy / efm_proxy, icc_proxy) interposed between InviscidFlux/RK2 and
// the components they monitor.
package components

import (
	"repro/internal/amr"
	"repro/internal/cca"
	"repro/internal/euler"
	"repro/internal/mpi"
	"repro/internal/platform"
)

// Port type identifiers used by the assembly's type checking.
const (
	TypeStatesPort       = "StatesPort"
	TypeFluxPort         = "FluxPort"
	TypeMeshPort         = "MeshPort"
	TypeIntegratorPort   = "IntegratorPort"
	TypeInviscidFluxPort = "InviscidFluxPort"
	TypeMonitorPort      = "MonitorPort"
	TypeMeasurementPort  = "MeasurementPort"
	TypeGoPort           = "GoPort"
)

// StatesPort computes limited left/right interface states for a patch along
// one sweep direction — the paper's States component functionality, with
// its two (sequential/strided) operating modes.
type StatesPort interface {
	Compute(b *euler.Block, dir euler.Dir, qL, qR *euler.EdgeField)
}

// FluxPort computes interface fluxes from reconstructed states. EFMFlux and
// GodunovFlux are interchangeable implementations (the paper's
// Quality-of-Service choice). It returns the kernel's internal iteration
// count (zero for non-iterative kernels).
type FluxPort interface {
	Compute(qL, qR, flux *euler.EdgeField) int
}

// InviscidFluxPort assembles a patch's X and Y interface fluxes by invoking
// States and a flux component patch by patch.
type InviscidFluxPort interface {
	PatchFluxes(b *euler.Block, fx, fy *euler.EdgeField)
}

// MeshPort is the AMRMesh component's interface: hierarchy management,
// ghost updates, regridding, load balancing and inter-level transfer.
type MeshPort interface {
	// Initialize builds the hierarchy (collective; call after MPI_Init).
	Initialize() error
	// NumLevels, Ratio and LevelPatchCount describe the (replicated)
	// hierarchy structure.
	NumLevels() int
	Ratio() int
	LevelPatchCount(level int) int
	// LocalPatches lists this rank's patches at a level.
	LocalPatches(level int) []amr.PatchRef
	// CellSize returns the level's mesh spacing.
	CellSize(level int) (dx, dy float64)
	// GhostUpdate fills ghost cells at a level (the MPI-heavy call).
	GhostUpdate(level int)
	// Regrid rebuilds the refined levels from fresh flags.
	Regrid()
	// LoadBalance redistributes patches; returns how many moved.
	LoadBalance() int
	// Restrict projects a fine level onto its parent level.
	Restrict(fineLevel int)
	// GlobalMaxWaveSpeed reduces the CFL wave speed across ranks.
	GlobalMaxWaveSpeed() float64
	// Imbalance is max/mean per-rank load (1 = balanced).
	Imbalance() float64
	// Stats returns per-level patch/cell counts.
	Stats() []amr.LevelStats
	// DensityImage composes the density field at finest resolution.
	DensityImage() (nx, ny int, img []float64)
}

// IntegratorPort advances one level (and, recursively, its finer levels)
// by dt — the RK2 component.
type IntegratorPort interface {
	Advance(level int, dt float64)
}

// procOf returns the platform processor behind a component's services, or
// nil in serial assemblies (or unit tests that bypass the framework).
func procOf(svc cca.Services) *platform.Proc {
	if svc == nil {
		return nil
	}
	if ctx := svc.Context(); ctx != nil {
		return ctx.Proc
	}
	return nil
}

// commOf returns the component's world communicator, or nil.
func commOf(svc cca.Services) *mpi.Comm {
	if svc == nil {
		return nil
	}
	if ctx := svc.Context(); ctx != nil {
		return ctx.Comm
	}
	return nil
}
