package components

import (
	"fmt"

	"repro/internal/amr"
	"repro/internal/cca"
	"repro/internal/core"
	"repro/internal/euler"
)

// TauMeasurement is the TAU component (paper §4.1): it exposes the rank's
// TAU measurement library through the generic MeasurementPort.
type TauMeasurement struct {
	svc cca.Services
}

// NewTauMeasurement constructs the component.
func NewTauMeasurement() cca.Component { return &TauMeasurement{} }

// SetServices registers the provides port.
func (t *TauMeasurement) SetServices(svc cca.Services) error {
	t.svc = svc
	if svc.Context() == nil {
		return fmt.Errorf("components: TauMeasurement needs a rank context (run under SCMD)")
	}
	return svc.AddProvidesPort(t, "measurement", TypeMeasurementPort)
}

var _ core.MeasurementPort = (*TauMeasurement)(nil)

// StartTimer implements core.MeasurementPort.
func (t *TauMeasurement) StartTimer(name, group string) { t.svc.Context().Prof.Start(name, group) }

// StopTimer implements core.MeasurementPort.
func (t *TauMeasurement) StopTimer(name string) { t.svc.Context().Prof.Stop(name) }

// SetGroupEnabled implements core.MeasurementPort.
func (t *TauMeasurement) SetGroupEnabled(group string, enabled bool) {
	t.svc.Context().Prof.SetGroupEnabled(group, enabled)
}

// TriggerEvent implements core.MeasurementPort.
func (t *TauMeasurement) TriggerEvent(name string, value float64) {
	t.svc.Context().Prof.TriggerEvent(name, value)
}

// MetricNames implements core.MeasurementPort.
func (t *TauMeasurement) MetricNames() []string { return t.svc.Context().Prof.MetricNames() }

// QueryMetrics implements core.MeasurementPort.
func (t *TauMeasurement) QueryMetrics() []float64 { return t.svc.Context().Prof.Snapshot() }

// GroupInclusive implements core.MeasurementPort.
func (t *TauMeasurement) GroupInclusive(group string) float64 {
	return t.svc.Context().Prof.GroupInclusive(group)
}

// Now implements core.MeasurementPort.
func (t *TauMeasurement) Now() float64 { return t.svc.Context().Proc.Now() }

// Mastermind is the CCA wrapper of core.Mastermind: it provides the
// MonitorPort the proxies use and consumes the MeasurementPort.
type Mastermind struct {
	svc cca.Services
	mm  *core.Mastermind
}

// NewMastermind constructs the component.
func NewMastermind() cca.Component { return &Mastermind{} }

// SetServices declares the used measurement port and registers the
// MonitorPort.
func (m *Mastermind) SetServices(svc cca.Services) error {
	m.svc = svc
	if err := svc.RegisterUsesPort("measurement", TypeMeasurementPort); err != nil {
		return err
	}
	return svc.AddProvidesPort(m, "monitor", TypeMonitorPort)
}

// Core returns the underlying Mastermind, initializing it on first use.
func (m *Mastermind) Core() *core.Mastermind {
	if m.mm == nil {
		p, err := m.svc.GetPort("measurement")
		if err != nil {
			panic(fmt.Sprintf("components: Mastermind unwired: %v", err))
		}
		m.mm = core.NewMastermind(p.(core.MeasurementPort))
	}
	return m.mm
}

var _ core.MonitorPort = (*Mastermind)(nil)

// StartMonitoring implements core.MonitorPort.
func (m *Mastermind) StartMonitoring(method string, params []core.Param) {
	m.Core().StartMonitoring(method, params)
}

// StopMonitoring implements core.MonitorPort.
func (m *Mastermind) StopMonitoring(method string) { m.Core().StopMonitoring(method) }

// RecordCall implements core.MonitorPort.
func (m *Mastermind) RecordCall(caller, callee, method string) {
	m.Core().RecordCall(caller, callee, method)
}

// StatesProxy intercepts StatesPort calls (the paper's sc_proxy): it
// extracts the performance parameters — array size Q and access mode —
// notifies the Mastermind, charges the extra virtual dispatch, and forwards
// to the real component.
type StatesProxy struct {
	svc    cca.Services
	target StatesPort
	mon    core.MonitorPort
}

// NewStatesProxy constructs the proxy.
func NewStatesProxy() cca.Component { return &StatesProxy{} }

// SetServices mirrors the real component's ports plus the monitor port.
func (p *StatesProxy) SetServices(svc cca.Services) error {
	p.svc = svc
	if err := svc.RegisterUsesPort("target", TypeStatesPort); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("monitor", TypeMonitorPort); err != nil {
		return err
	}
	return svc.AddProvidesPort(p, "states", TypeStatesPort)
}

// wire lazily resolves the proxy's connections.
func (p *StatesProxy) wire() {
	if p.target == nil {
		t, err := p.svc.GetPort("target")
		if err != nil {
			panic(fmt.Sprintf("components: %s unwired: %v", p.svc.InstanceName(), err))
		}
		p.target = t.(StatesPort)
		mo, err := p.svc.GetPort("monitor")
		if err != nil {
			panic(fmt.Sprintf("components: %s unwired: %v", p.svc.InstanceName(), err))
		}
		p.mon = mo.(core.MonitorPort)
	}
}

// Compute implements StatesPort by interposition.
func (p *StatesProxy) Compute(b *euler.Block, dir euler.Dir, qL, qR *euler.EdgeField) {
	p.wire()
	name := p.svc.InstanceName() + "::compute()"
	// Parameter extraction happens before the timers start (paper §5:
	// proxy work is outside the measured region).
	params := []core.Param{
		{Name: "Q", Value: float64(b.Cells())},
		{Name: "mode", Value: float64(dir)},
	}
	p.mon.StartMonitoring(name, params)
	if proc := procOf(p.svc); proc != nil {
		proc.ChargeCall() // the forwarded virtual invocation
	}
	p.target.Compute(b, dir, qL, qR)
	p.mon.StopMonitoring(name)
	p.mon.RecordCall(p.svc.InstanceName(), "states", "compute")
}

// FluxProxy intercepts FluxPort calls (g_proxy for GodunovFlux, efm_proxy
// for EFMFlux).
type FluxProxy struct {
	svc    cca.Services
	target FluxPort
	mon    core.MonitorPort
}

// NewFluxProxy constructs the proxy.
func NewFluxProxy() cca.Component { return &FluxProxy{} }

// SetServices mirrors the real component's ports plus the monitor port.
func (p *FluxProxy) SetServices(svc cca.Services) error {
	p.svc = svc
	if err := svc.RegisterUsesPort("target", TypeFluxPort); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("monitor", TypeMonitorPort); err != nil {
		return err
	}
	return svc.AddProvidesPort(p, "flux", TypeFluxPort)
}

func (p *FluxProxy) wire() {
	if p.target == nil {
		t, err := p.svc.GetPort("target")
		if err != nil {
			panic(fmt.Sprintf("components: %s unwired: %v", p.svc.InstanceName(), err))
		}
		p.target = t.(FluxPort)
		mo, err := p.svc.GetPort("monitor")
		if err != nil {
			panic(fmt.Sprintf("components: %s unwired: %v", p.svc.InstanceName(), err))
		}
		p.mon = mo.(core.MonitorPort)
	}
}

// Compute implements FluxPort by interposition.
func (p *FluxProxy) Compute(qL, qR, flux *euler.EdgeField) int {
	p.wire()
	name := p.svc.InstanceName() + "::compute()"
	q := float64(qL.NxCells * qL.NyCells)
	params := []core.Param{
		{Name: "Q", Value: q},
		{Name: "mode", Value: float64(flux.Dir)},
	}
	p.mon.StartMonitoring(name, params)
	if proc := procOf(p.svc); proc != nil {
		proc.ChargeCall()
	}
	iters := p.target.Compute(qL, qR, flux)
	p.mon.StopMonitoring(name)
	p.mon.RecordCall(p.svc.InstanceName(), "flux", "compute")
	return iters
}

// MeshProxy intercepts the AMRMesh methods worth modeling (the paper's
// icc_proxy): ghost updates (capturing the per-level message-passing costs
// of Fig. 9), regridding (whose cost is dominated by prolongation),
// restriction, and load balancing.
type MeshProxy struct {
	svc    cca.Services
	target MeshPort
	mon    core.MonitorPort
}

// NewMeshProxy constructs the proxy.
func NewMeshProxy() cca.Component { return &MeshProxy{} }

// SetServices mirrors the mesh ports plus the monitor port.
func (p *MeshProxy) SetServices(svc cca.Services) error {
	p.svc = svc
	if err := svc.RegisterUsesPort("target", TypeMeshPort); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("monitor", TypeMonitorPort); err != nil {
		return err
	}
	return svc.AddProvidesPort(p, "mesh", TypeMeshPort)
}

func (p *MeshProxy) wire() (MeshPort, core.MonitorPort) {
	if p.target == nil {
		t, err := p.svc.GetPort("target")
		if err != nil {
			panic(fmt.Sprintf("components: %s unwired: %v", p.svc.InstanceName(), err))
		}
		p.target = t.(MeshPort)
		mo, err := p.svc.GetPort("monitor")
		if err != nil {
			panic(fmt.Sprintf("components: %s unwired: %v", p.svc.InstanceName(), err))
		}
		p.mon = mo.(core.MonitorPort)
	}
	return p.target, p.mon
}

// monitored wraps a forwarded call in a monitoring window.
func (p *MeshProxy) monitored(method string, params []core.Param, call func()) {
	target, mon := p.wire()
	_ = target
	name := p.svc.InstanceName() + "::" + method + "()"
	mon.StartMonitoring(name, params)
	if proc := procOf(p.svc); proc != nil {
		proc.ChargeCall()
	}
	call()
	mon.StopMonitoring(name)
	mon.RecordCall(p.svc.InstanceName(), "mesh", method)
}

// Initialize forwards without monitoring (setup, not steady-state cost).
func (p *MeshProxy) Initialize() error {
	t, _ := p.wire()
	return t.Initialize()
}

// GhostUpdate implements MeshPort, monitored with the level as parameter —
// the records behind Fig. 9.
func (p *MeshProxy) GhostUpdate(level int) {
	t, _ := p.wire()
	p.monitored("ghostUpdate", []core.Param{{Name: "level", Value: float64(level)}},
		func() { t.GhostUpdate(level) })
}

// Regrid implements MeshPort, monitored (prolongation dominates).
func (p *MeshProxy) Regrid() {
	t, _ := p.wire()
	p.monitored("prolong", nil, func() { t.Regrid() })
}

// Restrict implements MeshPort, monitored.
func (p *MeshProxy) Restrict(fineLevel int) {
	t, _ := p.wire()
	p.monitored("restrict", []core.Param{{Name: "level", Value: float64(fineLevel)}},
		func() { t.Restrict(fineLevel) })
}

// LoadBalance implements MeshPort, monitored.
func (p *MeshProxy) LoadBalance() int {
	t, _ := p.wire()
	moved := 0
	p.monitored("loadBalance", nil, func() { moved = t.LoadBalance() })
	return moved
}

// The remaining MeshPort methods are cheap queries, forwarded unmonitored.

// NumLevels implements MeshPort.
func (p *MeshProxy) NumLevels() int { t, _ := p.wire(); return t.NumLevels() }

// Ratio implements MeshPort.
func (p *MeshProxy) Ratio() int { t, _ := p.wire(); return t.Ratio() }

// LevelPatchCount implements MeshPort.
func (p *MeshProxy) LevelPatchCount(level int) int {
	t, _ := p.wire()
	return t.LevelPatchCount(level)
}

// LocalPatches implements MeshPort.
func (p *MeshProxy) LocalPatches(level int) []amr.PatchRef {
	t, _ := p.wire()
	return t.LocalPatches(level)
}

// CellSize implements MeshPort.
func (p *MeshProxy) CellSize(level int) (float64, float64) {
	t, _ := p.wire()
	return t.CellSize(level)
}

// GlobalMaxWaveSpeed implements MeshPort.
func (p *MeshProxy) GlobalMaxWaveSpeed() float64 {
	t, _ := p.wire()
	return t.GlobalMaxWaveSpeed()
}

// Imbalance implements MeshPort.
func (p *MeshProxy) Imbalance() float64 { t, _ := p.wire(); return t.Imbalance() }

// Stats implements MeshPort.
func (p *MeshProxy) Stats() []amr.LevelStats { t, _ := p.wire(); return t.Stats() }

// DensityImage implements MeshPort.
func (p *MeshProxy) DensityImage() (int, int, []float64) {
	t, _ := p.wire()
	return t.DensityImage()
}
