package components

import (
	"testing"

	"repro/internal/amr"
	"repro/internal/cca"
	"repro/internal/euler"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
)

// runAdaptive assembles Godunov (primary) + EFM (fallback) behind an
// AdaptiveFlux with the given expectation model and drives n invocations
// of size q cells.
func runAdaptive(t *testing.T, expect perfmodel.Model, n, qside int) (switched bool, calls int) {
	t.Helper()
	wcfg := mpi.DefaultConfig()
	wcfg.Procs = 1
	w := mpi.NewWorld(wcfg)
	err := cca.RunSCMD(w, func(f *cca.Framework, r *mpi.Rank) error {
		var adaptor *AdaptiveFlux
		f.RegisterClass("GodunovFlux", NewGodunovFlux)
		f.RegisterClass("EFMFlux", NewEFMFlux)
		f.RegisterClass("AdaptiveFlux", func() cca.Component {
			adaptor = &AdaptiveFlux{Expectation: expect, Tolerance: 1.3, Window: 2}
			return adaptor
		})
		for _, line := range [][2]string{
			{"GodunovFlux", "god0"}, {"EFMFlux", "efm0"}, {"AdaptiveFlux", "adaptive0"},
		} {
			if err := f.Instantiate(line[1], line[0]); err != nil {
				return err
			}
		}
		if err := f.Connect("adaptive0", "primary", "god0", "flux"); err != nil {
			return err
		}
		if err := f.Connect("adaptive0", "fallback", "efm0", "flux"); err != nil {
			return err
		}
		port, err := f.LookupProvides("adaptive0", "flux")
		if err != nil {
			return err
		}
		fp := port.(FluxPort)

		proc := r.Proc
		b := euler.NewBlock(proc, qside, qside, 2)
		pr := euler.DefaultShockInterface()
		pr.InitBlock(b, 0, 0, pr.Lx/float64(qside), pr.Ly/float64(qside))
		b.FillBoundary(true, true, true, true)
		qL := euler.NewEdgeField(proc, qside, qside, euler.X)
		qR := euler.NewEdgeField(proc, qside, qside, euler.X)
		fl := euler.NewEdgeField(proc, qside, qside, euler.X)
		euler.States(proc, b, euler.X, qL, qR)
		for i := 0; i < n; i++ {
			fp.Compute(qL, qR, fl)
		}
		switched = adaptor.Switched()
		calls = adaptor.Calls()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return switched, calls
}

func TestAdaptiveFluxStaysOnPrimaryWhenExpectationHolds(t *testing.T) {
	// A generous expectation (well above reality) never triggers a switch.
	generous := perfmodel.Poly{Coeffs: []float64{0, 10}} // 10 us per cell
	switched, calls := runAdaptive(t, generous, 8, 48)
	if switched {
		t.Error("adaptor switched despite expectation holding")
	}
	if calls != 8 {
		t.Errorf("calls = %d, want 8", calls)
	}
}

func TestAdaptiveFluxSwitchesOnSustainedViolation(t *testing.T) {
	// An unrealistically tight expectation (far below Godunov's real cost)
	// is violated every call: after Window violations the adaptor must
	// switch to EFM (the paper's model-guided dynamic replacement).
	tight := perfmodel.Poly{Coeffs: []float64{0, 1e-6}}
	switched, _ := runAdaptive(t, tight, 8, 48)
	if !switched {
		t.Error("adaptor did not switch despite sustained violations")
	}
}

func TestAdaptiveFluxNoExpectationNeverSwitches(t *testing.T) {
	switched, _ := runAdaptive(t, nil, 6, 32)
	if switched {
		t.Error("adaptor without expectation must never switch")
	}
}

func TestFrameworkDisconnectAndRewire(t *testing.T) {
	// The AbstractFramework-style surgery: disconnect inviscidflux's flux
	// port from the Godunov proxy and rewire it to the EFM component.
	wcfg := mpi.DefaultConfig()
	wcfg.Procs = 1
	w := mpi.NewWorld(wcfg)
	err := cca.RunSCMD(w, func(f *cca.Framework, r *mpi.Rank) error {
		app := &App{Framework: f}
		RegisterClasses(f, DefaultAppConfig(), app)
		for _, line := range [][2]string{
			{"GodunovFlux", "god0"}, {"EFMFlux", "efm0"}, {"InviscidFlux", "iv0"}, {"States", "st0"},
		} {
			if err := f.Instantiate(line[1], line[0]); err != nil {
				return err
			}
		}
		if err := f.Connect("iv0", "states", "st0", "states"); err != nil {
			return err
		}
		if err := f.Connect("iv0", "flux", "god0", "flux"); err != nil {
			return err
		}
		if err := f.Disconnect("iv0", "flux"); err != nil {
			return err
		}
		if err := f.Connect("iv0", "flux", "efm0", "flux"); err != nil {
			return err
		}
		conns := f.Connections()
		found := false
		for _, c := range conns {
			if c.User == "iv0" && c.UsesPort == "flux" {
				if c.Provider != "efm0" {
					return errTest("flux port still wired to " + c.Provider)
				}
				found = true
			}
		}
		if !found {
			return errTest("rewired connection missing")
		}
		// Errors: disconnecting twice, unknown ports.
		if err := f.Disconnect("iv0", "nonexistent"); err == nil {
			return errTest("unknown uses port accepted")
		}
		if err := f.Disconnect("ghost", "flux"); err == nil {
			return errTest("unknown instance accepted")
		}
		if err := f.Disconnect("iv0", "flux"); err != nil {
			return err
		}
		if err := f.Disconnect("iv0", "flux"); err == nil {
			return errTest("double disconnect accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

// recordingMesh records the order of mesh operations to verify the paper's
// recursive processing sequence. It owns no patches, so RK2's stage loops
// are empty and only the orchestration order remains.
type recordingMesh struct {
	levels   int
	ratio    int
	ghostLog []int
	restrLog []int
}

func (m *recordingMesh) Initialize() error                   { return nil }
func (m *recordingMesh) NumLevels() int                      { return m.levels }
func (m *recordingMesh) Ratio() int                          { return m.ratio }
func (m *recordingMesh) LevelPatchCount(int) int             { return 1 }
func (m *recordingMesh) LocalPatches(int) []amr.PatchRef     { return nil }
func (m *recordingMesh) CellSize(int) (float64, float64)     { return 0.1, 0.1 }
func (m *recordingMesh) GhostUpdate(level int)               { m.ghostLog = append(m.ghostLog, level) }
func (m *recordingMesh) Regrid()                             {}
func (m *recordingMesh) LoadBalance() int                    { return 0 }
func (m *recordingMesh) Restrict(lev int)                    { m.restrLog = append(m.restrLog, lev) }
func (m *recordingMesh) GlobalMaxWaveSpeed() float64         { return 1 }
func (m *recordingMesh) Imbalance() float64                  { return 1 }
func (m *recordingMesh) Stats() []amr.LevelStats             { return nil }
func (m *recordingMesh) DensityImage() (int, int, []float64) { return 0, 0, nil }

// nopIVF satisfies InviscidFluxPort for orchestration-only tests.
type nopIVF struct{}

func (nopIVF) PatchFluxes(*euler.Block, *euler.EdgeField, *euler.EdgeField) {}

func TestRK2SubcyclingSequence(t *testing.T) {
	// The paper's processing order for 3 levels at ratio 2 is
	// L0, L1, L2, L2, L1, L2, L2 (Section 5). RK2 issues two ghost updates
	// per level visit (one per Heun stage), and a restrict after each
	// subcycle pair, so the expected logs are derivable exactly.
	mesh := &recordingMesh{levels: 3, ratio: 2}
	rk := &RK2{mesh: mesh, ivf: nopIVF{}}
	rk.Advance(0, 0.001)

	wantGhost := []int{0, 0, 1, 1, 2, 2, 2, 2, 1, 1, 2, 2, 2, 2}
	if len(mesh.ghostLog) != len(wantGhost) {
		t.Fatalf("ghost updates = %v, want %v", mesh.ghostLog, wantGhost)
	}
	for i := range wantGhost {
		if mesh.ghostLog[i] != wantGhost[i] {
			t.Fatalf("ghost updates = %v, want %v", mesh.ghostLog, wantGhost)
		}
	}
	// Level visits (pairs of ghost updates) read L0,L1,L2,L2,L1,L2,L2.
	var visits []int
	for i := 0; i < len(mesh.ghostLog); i += 2 {
		visits = append(visits, mesh.ghostLog[i])
	}
	wantVisits := []int{0, 1, 2, 2, 1, 2, 2}
	for i := range wantVisits {
		if visits[i] != wantVisits[i] {
			t.Fatalf("level sequence = %v, want %v (paper Section 5)", visits, wantVisits)
		}
	}
	wantRestrict := []int{2, 2, 1}
	if len(mesh.restrLog) != len(wantRestrict) {
		t.Fatalf("restricts = %v, want %v", mesh.restrLog, wantRestrict)
	}
	for i := range wantRestrict {
		if mesh.restrLog[i] != wantRestrict[i] {
			t.Fatalf("restricts = %v, want %v", mesh.restrLog, wantRestrict)
		}
	}
}
