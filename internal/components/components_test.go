package components

import (
	"math"
	"strings"
	"testing"

	"repro/internal/amr"
	"repro/internal/cca"
	"repro/internal/core"
	"repro/internal/euler"
	"repro/internal/mpi"
)

// smallAppConfig is a fast 3-rank case study for tests.
func smallAppConfig() AppConfig {
	cfg := DefaultAppConfig()
	cfg.Mesh.BaseNx, cfg.Mesh.BaseNy = 32, 16
	cfg.Mesh.TileNx, cfg.Mesh.TileNy = 16, 8
	cfg.Driver.Steps = 4
	cfg.Driver.RegridInterval = 2
	return cfg
}

// runApp assembles and runs the case study on P ranks, returning the
// per-rank apps and the world.
func runApp(t *testing.T, cfg AppConfig, procs int) ([]*App, *mpi.World) {
	t.Helper()
	apps, w, _ := runAppWithImage(t, cfg, procs)
	return apps, w
}

// runAppWithImage additionally composes the final density image (a
// collective, so it must happen inside the SCMD body).
func runAppWithImage(t *testing.T, cfg AppConfig, procs int) ([]*App, *mpi.World, []float64) {
	t.Helper()
	wcfg := mpi.DefaultConfig()
	wcfg.Procs = procs
	w := mpi.NewWorld(wcfg)
	apps := make([]*App, procs)
	var img []float64
	err := cca.RunSCMD(w, func(f *cca.Framework, r *mpi.Rank) error {
		app, err := BuildApp(f, cfg)
		if err != nil {
			return err
		}
		apps[r.Rank()] = app
		if err := app.Go(); err != nil {
			return err
		}
		// Image composition is post-processing: keep its collectives out
		// of the application profile via TAU's group control.
		r.Prof.SetGroupEnabled("MPI", false)
		_, _, im := app.Mesh.Hierarchy().DensityImage()
		r.Prof.SetGroupEnabled("MPI", true)
		if r.Rank() == 0 {
			img = im
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return apps, w, img
}

func TestAssemblyScriptShapes(t *testing.T) {
	mon := AssemblyScript(DefaultAppConfig())
	for _, want := range []string{"sc_proxy", "g_proxy", "icc_proxy", "mastermind0", "tau0", "GodunovFlux"} {
		if !strings.Contains(mon, want) {
			t.Errorf("monitored script missing %q", want)
		}
	}
	cfg := DefaultAppConfig()
	cfg.Flux = EFM
	efm := AssemblyScript(cfg)
	if !strings.Contains(efm, "efm_proxy") || !strings.Contains(efm, "EFMFlux") {
		t.Error("EFM script missing efm_proxy/EFMFlux")
	}
	cfg.Monitor = false
	bare := AssemblyScript(cfg)
	for _, banned := range []string{"proxy", "mastermind", "tau0"} {
		if strings.Contains(bare, banned) {
			t.Errorf("unmonitored script contains %q", banned)
		}
	}
}

func TestCaseStudyRunsAndRecords(t *testing.T) {
	cfg := smallAppConfig()
	apps, w := runApp(t, cfg, 3)

	for rank, app := range apps {
		if app.Driver.StepsTaken != cfg.Driver.Steps {
			t.Errorf("rank %d took %d steps, want %d", rank, app.Driver.StepsTaken, cfg.Driver.Steps)
		}
		if app.Driver.SimTime <= 0 {
			t.Errorf("rank %d sim time %g", rank, app.Driver.SimTime)
		}
		recs := app.Records()
		if len(recs) == 0 {
			t.Fatalf("rank %d produced no monitoring records", rank)
		}
		names := map[string]bool{}
		for _, r := range recs {
			names[r.Method] = true
		}
		for _, want := range []string{
			"sc_proxy::compute()", "g_proxy::compute()",
			"icc_proxy::ghostUpdate()", "icc_proxy::restrict()", "icc_proxy::prolong()",
		} {
			if !names[want] {
				t.Errorf("rank %d missing record %q (have %v)", rank, want, names)
			}
		}
	}

	// The profile must contain the Fig. 3 headline rows.
	prof := w.Profiles()[0]
	for _, name := range []string{
		"int main(int, char **)", "MPI_Waitsome()", "MPI_Init()",
		"MPI_Allreduce()", "MPI_Finalize()", "sc_proxy::compute()",
	} {
		tm := prof.Lookup(name)
		if tm == nil || tm.Calls() == 0 {
			t.Errorf("profile missing timer %q", name)
		}
	}
	// main must be the top inclusive timer.
	main := prof.Lookup("int main(int, char **)")
	for _, tm := range prof.Timers() {
		if tm.Inclusive() > main.Inclusive()+1e-9 {
			t.Errorf("timer %s (%g us) exceeds main (%g us)", tm.Name(), tm.Inclusive(), main.Inclusive())
		}
	}
}

func TestStatesRecordsCarryQAndMode(t *testing.T) {
	apps, _ := runApp(t, smallAppConfig(), 3)
	rec := apps[0].Core().Record("sc_proxy::compute()")
	if rec == nil || len(rec.Invocations) == 0 {
		t.Fatal("no sc_proxy records")
	}
	seenX, seenY := false, false
	for _, inv := range rec.Invocations {
		q, ok := inv.Param("Q")
		if !ok || q <= 0 {
			t.Fatalf("invocation without positive Q: %+v", inv)
		}
		mode, _ := inv.Param("mode")
		if mode == 0 {
			seenX = true
		} else {
			seenY = true
		}
		if inv.WallUS <= 0 {
			t.Errorf("non-positive wall time %g", inv.WallUS)
		}
		if inv.MPIUS != 0 {
			t.Errorf("States invoked MPI (%g us); it must be compute-only", inv.MPIUS)
		}
	}
	if !seenX || !seenY {
		t.Error("both sequential and strided modes should be recorded (X/Y alternation)")
	}
}

func TestGhostUpdateRecordsHaveMPITimeAndLevels(t *testing.T) {
	apps, _ := runApp(t, smallAppConfig(), 3)
	rec := apps[0].Core().Record("icc_proxy::ghostUpdate()")
	if rec == nil || len(rec.Invocations) == 0 {
		t.Fatal("no ghostUpdate records")
	}
	levels := map[float64]bool{}
	anyMPI := false
	for _, inv := range rec.Invocations {
		lvl, ok := inv.Param("level")
		if !ok {
			t.Fatal("ghostUpdate record without level parameter")
		}
		levels[lvl] = true
		if inv.MPIUS > 0 {
			anyMPI = true
		}
		if inv.MPIUS > inv.WallUS+1e-9 {
			t.Errorf("MPI time %g exceeds wall %g", inv.MPIUS, inv.WallUS)
		}
	}
	if len(levels) < 2 {
		t.Errorf("ghost updates seen only at levels %v", levels)
	}
	if !anyMPI {
		t.Error("no ghost update spent any MPI time on 3 ranks")
	}
}

func TestCallTraceCapturesWiring(t *testing.T) {
	apps, _ := runApp(t, smallAppConfig(), 3)
	edges := apps[0].Core().SortedEdges()
	if len(edges) < 3 {
		t.Fatalf("call trace too small: %v", edges)
	}
	found := map[string]bool{}
	for _, e := range edges {
		found[e.Caller+"->"+e.Method] = true
	}
	for _, want := range []string{"sc_proxy->compute", "g_proxy->compute", "icc_proxy->ghostUpdate"} {
		if !found[want] {
			t.Errorf("call trace missing %s (have %v)", want, found)
		}
	}
}

func TestWaitsomeDominatesMPI(t *testing.T) {
	// The Fig. 3 shape: MPI_Waitsome is the largest MPI row.
	_, w := runApp(t, smallAppConfig(), 3)
	prof := w.Profiles()[0]
	ws := prof.Lookup("MPI_Waitsome()")
	if ws == nil {
		t.Fatal("no MPI_Waitsome timer")
	}
	for _, tm := range prof.Timers() {
		if tm.Group() != "MPI" || tm.Name() == "MPI_Waitsome()" ||
			tm.Name() == "MPI_Init()" || tm.Name() == "MPI_Finalize()" {
			continue
		}
		if tm.Inclusive() > ws.Inclusive() {
			t.Errorf("%s (%g us) exceeds MPI_Waitsome (%g us)", tm.Name(), tm.Inclusive(), ws.Inclusive())
		}
	}
}

func TestEFMAssemblyRunsAndIsCheaper(t *testing.T) {
	cfgG := smallAppConfig()
	appsG, _ := runApp(t, cfgG, 3)
	cfgE := smallAppConfig()
	cfgE.Flux = EFM
	appsE, _ := runApp(t, cfgE, 3)

	recG := appsG[0].Core().Record("g_proxy::compute()")
	recE := appsE[0].Core().Record("efm_proxy::compute()")
	if recG == nil || recE == nil {
		t.Fatal("missing flux records")
	}
	meanUS := func(rec *core.Record) float64 {
		var s float64
		for _, inv := range rec.Invocations {
			s += inv.WallUS
		}
		return s / float64(len(rec.Invocations))
	}
	g, e := meanUS(recG), meanUS(recE)
	if g <= e {
		t.Errorf("Godunov mean %g us should exceed EFM mean %g us", g, e)
	}
}

func TestUnmonitoredAssemblyRuns(t *testing.T) {
	cfg := smallAppConfig()
	cfg.Monitor = false
	apps, w := runApp(t, cfg, 3)
	if apps[0].Records() != nil {
		t.Error("unmonitored run produced records")
	}
	if w.Profiles()[0].Lookup("sc_proxy::compute()") != nil {
		t.Error("unmonitored run has proxy timers")
	}
	if apps[0].Driver.StepsTaken != cfg.Driver.Steps {
		t.Error("unmonitored run did not complete")
	}
}

func TestMonitoredMatchesUnmonitoredPhysics(t *testing.T) {
	// Proxies must not perturb the numerics: the density images of
	// monitored and unmonitored runs are identical.
	cfgM := smallAppConfig()
	_, _, imgM := runAppWithImage(t, cfgM, 3)
	cfgU := smallAppConfig()
	cfgU.Monitor = false
	_, _, imgU := runAppWithImage(t, cfgU, 3)
	if len(imgM) != len(imgU) {
		t.Fatalf("image sizes differ: %d vs %d", len(imgM), len(imgU))
	}
	for k := range imgM {
		if imgM[k] != imgU[k] {
			t.Fatalf("monitored and unmonitored fields differ at %d: %g vs %g", k, imgM[k], imgU[k])
		}
	}
}

func TestSimulationStateStaysPhysical(t *testing.T) {
	apps, _ := runApp(t, smallAppConfig(), 3)
	h := apps[1].Mesh.Hierarchy()
	for lev := 0; lev < h.NumLevels(); lev++ {
		for _, p := range h.LocalPatches(lev) {
			for j := 0; j < p.Meta.Rect.Ny(); j++ {
				for i := 0; i < p.Meta.Rect.Nx(); i++ {
					w := p.Block.PrimAt(i, j)
					if w.Rho <= 0 || w.P <= 0 || math.IsNaN(w.Rho) {
						t.Fatalf("non-physical state at level %d (%d,%d): %+v", lev, i, j, w)
					}
				}
			}
		}
	}
}

func TestDensityImageShowsShockProgress(t *testing.T) {
	cfg := smallAppConfig()
	cfg.Driver.Steps = 8
	_, _, img := runAppWithImage(t, cfg, 3)
	nx := cfg.Mesh.BaseNx * 4
	ny := cfg.Mesh.BaseNy * 4
	// Post-shock density (>= ~1.8) must extend past the initial shock
	// position after 8 coarse steps.
	shockX0 := int(cfg.Mesh.Problem.ShockX / cfg.Mesh.Problem.Lx * float64(nx))
	maxHigh := 0
	row := ny / 2
	for i := 0; i < nx; i++ {
		if img[row*nx+i] > 1.5 && img[row*nx+i] < 2.5 {
			maxHigh = i
		}
	}
	if maxHigh <= shockX0 {
		t.Errorf("compressed region ends at %d, initial shock at %d: no propagation", maxHigh, shockX0)
	}
}

func TestDOTExportContainsProxiesAndMonitorEdges(t *testing.T) {
	f := cca.NewFramework(nil)
	cfg := smallAppConfig()
	// Build without running (serial framework): AMRMesh etc. only register
	// ports at SetServices, which is rank-independent except TauMeasurement.
	app := &App{Config: cfg, Framework: f}
	RegisterClasses(f, cfg, app)
	script := AssemblyScript(cfg)
	// Drop the TauMeasurement line dependency by replacing context check:
	// run the script in a 1-rank world instead.
	wcfg := mpi.DefaultConfig()
	wcfg.Procs = 1
	w := mpi.NewWorld(wcfg)
	var dot string
	err := cca.RunSCMD(w, func(f *cca.Framework, r *mpi.Rank) error {
		app := &App{Config: cfg, Framework: f}
		RegisterClasses(f, cfg, app)
		if err := f.RunScript(script); err != nil {
			return err
		}
		var sb strings.Builder
		if err := f.WriteDOT(&sb, "assembly"); err != nil {
			return err
		}
		dot = sb.String()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sc_proxy", "icc_proxy", "mastermind0", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestLoadBalanceHappensOnce(t *testing.T) {
	cfg := smallAppConfig()
	cfg.Driver.Steps = 8
	cfg.Driver.RegridInterval = 2
	cfg.Driver.LoadBalanceThreshold = 1.01 // trigger at the first chance
	apps, _ := runApp(t, cfg, 3)
	rec := apps[0].Core().Record("icc_proxy::loadBalance()")
	if rec == nil {
		t.Skip("no load balance triggered on this configuration")
	}
	if len(rec.Invocations) != 1 {
		t.Errorf("load balance ran %d times, want 1 (MaxLoadBalances)", len(rec.Invocations))
	}
}

func TestDeterministicAcrossIdenticalRuns(t *testing.T) {
	cfg := smallAppConfig()
	_, w1 := runApp(t, cfg, 3)
	_, w2 := runApp(t, cfg, 3)
	for rank := 0; rank < 3; rank++ {
		a := w1.Procs()[rank].Now()
		b := w2.Procs()[rank].Now()
		if a != b {
			t.Errorf("rank %d final clock differs: %.6f vs %.6f", rank, a, b)
		}
	}
}

// Direct component unit tests (serial framework where possible).

func TestStatesComponentDelegates(t *testing.T) {
	f := cca.NewFramework(nil)
	f.RegisterClass("States", NewStates)
	if err := f.Instantiate("s", "States"); err != nil {
		t.Fatal(err)
	}
	p, err := f.LookupProvides("s", "states")
	if err != nil {
		t.Fatal(err)
	}
	sp := p.(StatesPort)
	b := euler.NewBlock(nil, 8, 8, 2)
	w := euler.Prim{Rho: 1, U: 0, V: 0, P: 1, Y: 0}
	for j := -2; j < 10; j++ {
		for i := -2; i < 10; i++ {
			b.SetPrim(i, j, w)
		}
	}
	qL := euler.NewEdgeField(nil, 8, 8, euler.X)
	qR := euler.NewEdgeField(nil, 8, 8, euler.X)
	sp.Compute(b, euler.X, qL, qR)
	want := euler.ConsFromPrim(w)
	if qL.Q[euler.IRho][0] != want[euler.IRho] {
		t.Errorf("States component did not delegate: %g", qL.Q[euler.IRho][0])
	}
}

func TestAMRMeshBeforeInitializePanics(t *testing.T) {
	f := cca.NewFramework(nil)
	f.RegisterClass("AMRMesh", NewAMRMesh(amr.DefaultConfig()))
	if err := f.Instantiate("m", "AMRMesh"); err != nil {
		t.Fatal(err)
	}
	p, _ := f.LookupProvides("m", "mesh")
	defer func() {
		if recover() == nil {
			t.Fatal("mesh use before Initialize did not panic")
		}
	}()
	p.(MeshPort).NumLevels()
}
