package components

import (
	"fmt"
	"strings"

	"repro/internal/amr"
	"repro/internal/cca"
	"repro/internal/core"
)

// FluxChoice selects the InviscidFlux implementation — the paper's
// Quality-of-Service substitution point.
type FluxChoice int

// Flux implementations.
const (
	// Godunov is the accurate, expensive exact-Riemann flux (the
	// scientists' preference; the paper's main profile used it).
	Godunov FluxChoice = iota
	// EFM is the cheap, low-variance kinetic flux.
	EFM
)

// String names the choice.
func (fc FluxChoice) String() string {
	if fc == EFM {
		return "EFM"
	}
	return "Godunov"
}

// fluxClassAndProxy maps the choice to component class and proxy instance
// names (matching the paper's g_proxy / efm_proxy labels).
func (fc FluxChoice) fluxClassAndProxy() (class, proxyName string) {
	if fc == EFM {
		return "EFMFlux", "efm_proxy"
	}
	return "GodunovFlux", "g_proxy"
}

// AppConfig assembles the case-study application.
type AppConfig struct {
	// Mesh configures the SAMR hierarchy.
	Mesh amr.Config
	// Driver configures the main loop.
	Driver DriverConfig
	// Flux picks the flux implementation.
	Flux FluxChoice
	// Monitor interposes the proxies and PMM components; switching it off
	// gives the bare assembly (the proxy-overhead ablation).
	Monitor bool
}

// DefaultAppConfig returns the paper's case-study setup (Godunov flux,
// monitored).
func DefaultAppConfig() AppConfig {
	return AppConfig{
		Mesh:    amr.DefaultConfig(),
		Driver:  DefaultDriverConfig(),
		Flux:    Godunov,
		Monitor: true,
	}
}

// App holds one rank's assembled application with handles into the
// components the harness inspects after the run.
type App struct {
	Config     AppConfig
	Framework  *cca.Framework
	Driver     *ShockDriver
	Mesh       *AMRMesh
	Mastermind *Mastermind
}

// Records returns the rank's monitoring records (nil when unmonitored).
func (a *App) Records() []*core.Record {
	if a.Mastermind == nil || a.Mastermind.mm == nil {
		return nil
	}
	return a.Mastermind.Core().Records()
}

// Core returns the rank's core Mastermind (nil when unmonitored).
func (a *App) Core() *core.Mastermind {
	if a.Mastermind == nil {
		return nil
	}
	return a.Mastermind.Core()
}

// AssemblyScript renders the CCAFFEINE assembly script for the
// configuration (without the final "go" line): the textual form of Fig. 2.
func AssemblyScript(cfg AppConfig) string {
	fluxClass, fluxProxy := cfg.Flux.fluxClassAndProxy()
	var b strings.Builder
	b.WriteString("# case-study assembly (paper Fig. 2)\n")
	fmt.Fprintf(&b, "instantiate AMRMesh amrmesh0\n")
	fmt.Fprintf(&b, "instantiate States states0\n")
	fmt.Fprintf(&b, "instantiate %s flux0\n", fluxClass)
	fmt.Fprintf(&b, "instantiate InviscidFlux inviscidflux0\n")
	fmt.Fprintf(&b, "instantiate RK2 rk20\n")
	fmt.Fprintf(&b, "instantiate ShockDriver driver\n")
	if cfg.Monitor {
		fmt.Fprintf(&b, "instantiate TauMeasurement tau0\n")
		fmt.Fprintf(&b, "instantiate Mastermind mastermind0\n")
		fmt.Fprintf(&b, "instantiate StatesProxy sc_proxy\n")
		fmt.Fprintf(&b, "instantiate FluxProxy %s\n", fluxProxy)
		fmt.Fprintf(&b, "instantiate MeshProxy icc_proxy\n")
		fmt.Fprintf(&b, "connect mastermind0 measurement tau0 measurement\n")
		fmt.Fprintf(&b, "connect sc_proxy target states0 states\n")
		fmt.Fprintf(&b, "connect sc_proxy monitor mastermind0 monitor\n")
		fmt.Fprintf(&b, "connect %s target flux0 flux\n", fluxProxy)
		fmt.Fprintf(&b, "connect %s monitor mastermind0 monitor\n", fluxProxy)
		fmt.Fprintf(&b, "connect icc_proxy target amrmesh0 mesh\n")
		fmt.Fprintf(&b, "connect icc_proxy monitor mastermind0 monitor\n")
		fmt.Fprintf(&b, "connect inviscidflux0 states sc_proxy states\n")
		fmt.Fprintf(&b, "connect inviscidflux0 flux %s flux\n", fluxProxy)
		fmt.Fprintf(&b, "connect rk20 mesh icc_proxy mesh\n")
		fmt.Fprintf(&b, "connect driver mesh icc_proxy mesh\n")
	} else {
		fmt.Fprintf(&b, "connect inviscidflux0 states states0 states\n")
		fmt.Fprintf(&b, "connect inviscidflux0 flux flux0 flux\n")
		fmt.Fprintf(&b, "connect rk20 mesh amrmesh0 mesh\n")
		fmt.Fprintf(&b, "connect driver mesh amrmesh0 mesh\n")
	}
	fmt.Fprintf(&b, "connect rk20 inviscidflux inviscidflux0 inviscidflux\n")
	fmt.Fprintf(&b, "connect driver integrator rk20 integrator\n")
	return b.String()
}

// RegisterClasses populates the framework's class repository, capturing the
// app handles as instances are created.
func RegisterClasses(f *cca.Framework, cfg AppConfig, app *App) {
	f.RegisterClass("AMRMesh", func() cca.Component {
		c := &AMRMesh{cfg: cfg.Mesh}
		app.Mesh = c
		return c
	})
	f.RegisterClass("States", NewStates)
	f.RegisterClass("EFMFlux", NewEFMFlux)
	f.RegisterClass("GodunovFlux", NewGodunovFlux)
	f.RegisterClass("InviscidFlux", NewInviscidFlux)
	f.RegisterClass("RK2", NewRK2)
	f.RegisterClass("ShockDriver", func() cca.Component {
		c := &ShockDriver{cfg: cfg.Driver}
		app.Driver = c
		return c
	})
	f.RegisterClass("TauMeasurement", NewTauMeasurement)
	f.RegisterClass("Mastermind", func() cca.Component {
		c := &Mastermind{}
		app.Mastermind = c
		return c
	})
	f.RegisterClass("StatesProxy", NewStatesProxy)
	f.RegisterClass("FluxProxy", NewFluxProxy)
	f.RegisterClass("MeshProxy", NewMeshProxy)
}

// BuildApp registers the classes and runs the assembly script, returning
// the handles. The application has not started: call app.Go().
func BuildApp(f *cca.Framework, cfg AppConfig) (*App, error) {
	app := &App{Config: cfg, Framework: f}
	RegisterClasses(f, cfg, app)
	if err := f.RunScript(AssemblyScript(cfg)); err != nil {
		return nil, err
	}
	return app, nil
}

// Go starts the assembled application through the framework.
func (a *App) Go() error { return a.Framework.Go("driver", "go") }
