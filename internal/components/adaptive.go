package components

import (
	"fmt"

	"repro/internal/cca"
	"repro/internal/euler"
	"repro/internal/perfmodel"
)

// AdaptiveFlux implements the paper's Section 6 outlook — "dynamic
// performance optimization which uses online performance monitoring to
// determine when performance expectations are not being met and new
// model-guided decisions of component use need to take place" — as a CCA
// component: it provides a FluxPort, forwards to a primary implementation
// while its measured per-call times stay within a tolerance of the fitted
// performance model, and switches to the fallback implementation the
// moment the expectation is violated over a full observation window.
type AdaptiveFlux struct {
	svc      cca.Services
	primary  FluxPort
	fallback FluxPort

	// Expectation predicts the primary's per-call microseconds at array
	// size Q; Tolerance is the acceptable measured/predicted overrun
	// (e.g. 1.5); Window is how many consecutive violations trigger the
	// switch.
	Expectation perfmodel.Model
	Tolerance   float64
	Window      int

	violations int
	switched   bool
	calls      int
}

// NewAdaptiveFlux returns a factory with the given expectation policy.
func NewAdaptiveFlux(expect perfmodel.Model, tolerance float64, window int) cca.Factory {
	return func() cca.Component {
		return &AdaptiveFlux{Expectation: expect, Tolerance: tolerance, Window: window}
	}
}

// SetServices declares the two candidate implementations and registers the
// provided FluxPort.
func (a *AdaptiveFlux) SetServices(svc cca.Services) error {
	a.svc = svc
	if err := svc.RegisterUsesPort("primary", TypeFluxPort); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("fallback", TypeFluxPort); err != nil {
		return err
	}
	return svc.AddProvidesPort(a, "flux", TypeFluxPort)
}

// wire resolves the candidate ports.
func (a *AdaptiveFlux) wire() {
	if a.primary != nil {
		return
	}
	p, err := a.svc.GetPort("primary")
	if err != nil {
		panic(fmt.Sprintf("components: %s unwired: %v", a.svc.InstanceName(), err))
	}
	a.primary = p.(FluxPort)
	fb, err := a.svc.GetPort("fallback")
	if err != nil {
		panic(fmt.Sprintf("components: %s unwired: %v", a.svc.InstanceName(), err))
	}
	a.fallback = fb.(FluxPort)
}

// Switched reports whether the adaptor has replaced the primary.
func (a *AdaptiveFlux) Switched() bool { return a.switched }

// Calls returns how many invocations the adaptor has forwarded.
func (a *AdaptiveFlux) Calls() int { return a.calls }

// Compute implements FluxPort: forward, measure (virtual time), compare
// against the expectation, and switch implementations on sustained
// violation.
func (a *AdaptiveFlux) Compute(qL, qR, flux *euler.EdgeField) int {
	a.wire()
	a.calls++
	target := a.primary
	if a.switched {
		target = a.fallback
	}
	ctx := a.svc.Context()
	var t0 float64
	if ctx != nil {
		t0 = ctx.Proc.Now()
	}
	iters := target.Compute(qL, qR, flux)
	if ctx == nil || a.switched || a.Expectation == nil {
		return iters
	}
	elapsed := ctx.Proc.Now() - t0
	q := float64(qL.NxCells * qL.NyCells)
	expect := a.Expectation.Predict(q)
	tol := a.Tolerance
	if tol <= 0 {
		tol = 1.5
	}
	if expect > 0 && elapsed > tol*expect {
		a.violations++
	} else {
		a.violations = 0
	}
	win := a.Window
	if win <= 0 {
		win = 3
	}
	if a.violations >= win {
		a.switched = true
		ctx.Prof.TriggerEvent("AdaptiveFlux switch", q)
	}
	return iters
}
