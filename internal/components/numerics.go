package components

import (
	"fmt"

	"repro/internal/cca"
	"repro/internal/euler"
)

// States is the reconstruction component: it computes left/right interface
// states for a data array, in sequential (X-derivative) or strided
// (Y-derivative) mode.
type States struct {
	svc cca.Services
}

// NewStates constructs the component.
func NewStates() cca.Component { return &States{} }

// SetServices registers the provides port.
func (s *States) SetServices(svc cca.Services) error {
	s.svc = svc
	return svc.AddProvidesPort(s, "states", TypeStatesPort)
}

// Compute implements StatesPort.
func (s *States) Compute(b *euler.Block, dir euler.Dir, qL, qR *euler.EdgeField) {
	euler.States(procOf(s.svc), b, dir, qL, qR)
}

// EFMFlux is the kinetic (Equilibrium Flux Method) flux component: cheap,
// low-variance, slightly more diffusive.
type EFMFlux struct {
	svc cca.Services
}

// NewEFMFlux constructs the component.
func NewEFMFlux() cca.Component { return &EFMFlux{} }

// SetServices registers the provides port.
func (e *EFMFlux) SetServices(svc cca.Services) error {
	e.svc = svc
	return svc.AddProvidesPort(e, "flux", TypeFluxPort)
}

// Compute implements FluxPort.
func (e *EFMFlux) Compute(qL, qR, flux *euler.EdgeField) int {
	euler.EFMFlux(procOf(e.svc), qL, qR, flux)
	return 0
}

// GodunovFlux is the exact-Riemann-solver flux component: more accurate
// (the scientists' preference) but more expensive, with data-dependent
// iteration counts.
type GodunovFlux struct {
	svc cca.Services
}

// NewGodunovFlux constructs the component.
func NewGodunovFlux() cca.Component { return &GodunovFlux{} }

// SetServices registers the provides port.
func (g *GodunovFlux) SetServices(svc cca.Services) error {
	g.svc = svc
	return svc.AddProvidesPort(g, "flux", TypeFluxPort)
}

// Compute implements FluxPort.
func (g *GodunovFlux) Compute(qL, qR, flux *euler.EdgeField) int {
	return euler.GodunovFlux(procOf(g.svc), qL, qR, flux)
}

// InviscidFlux composes a patch's flux evaluation: States then Flux for
// each sweep direction. Its uses-ports are where the paper interposes the
// sc_proxy and g_proxy/efm_proxy.
type InviscidFlux struct {
	svc    cca.Services
	states StatesPort
	flux   FluxPort
}

// NewInviscidFlux constructs the component.
func NewInviscidFlux() cca.Component { return &InviscidFlux{} }

// SetServices declares the used ports and registers the provides port.
func (v *InviscidFlux) SetServices(svc cca.Services) error {
	v.svc = svc
	if err := svc.RegisterUsesPort("states", TypeStatesPort); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("flux", TypeFluxPort); err != nil {
		return err
	}
	return svc.AddProvidesPort(v, "inviscidflux", TypeInviscidFluxPort)
}

// ports lazily fetches the connected ports.
func (v *InviscidFlux) ports() (StatesPort, FluxPort, error) {
	if v.states == nil {
		p, err := v.svc.GetPort("states")
		if err != nil {
			return nil, nil, err
		}
		v.states = p.(StatesPort)
	}
	if v.flux == nil {
		p, err := v.svc.GetPort("flux")
		if err != nil {
			return nil, nil, err
		}
		v.flux = p.(FluxPort)
	}
	return v.states, v.flux, nil
}

// PatchFluxes implements InviscidFluxPort: one X sweep (sequential access)
// and one Y sweep (strided access) through States and the flux component.
func (v *InviscidFlux) PatchFluxes(b *euler.Block, fx, fy *euler.EdgeField) {
	states, flux, err := v.ports()
	if err != nil {
		panic(fmt.Sprintf("components: InviscidFlux unwired: %v", err))
	}
	proc := procOf(v.svc)
	qLX := euler.NewEdgeField(proc, b.Nx, b.Ny, euler.X)
	qRX := euler.NewEdgeField(proc, b.Nx, b.Ny, euler.X)
	states.Compute(b, euler.X, qLX, qRX)
	flux.Compute(qLX, qRX, fx)
	qLY := euler.NewEdgeField(proc, b.Nx, b.Ny, euler.Y)
	qRY := euler.NewEdgeField(proc, b.Nx, b.Ny, euler.Y)
	states.Compute(b, euler.Y, qLY, qRY)
	flux.Compute(qLY, qRY, fy)
}

// RK2 orchestrates the recursive processing of patches: a two-stage Heun
// update per level with ghost updates between stages, then the subcycled
// recursion into finer levels (the paper's L0, L1, L2, L2, L1, L2, L2
// sequence for a 3-level factor-2 hierarchy) followed by restriction.
type RK2 struct {
	svc  cca.Services
	mesh MeshPort
	ivf  InviscidFluxPort
}

// NewRK2 constructs the component.
func NewRK2() cca.Component { return &RK2{} }

// SetServices declares the used ports and registers the provides port.
func (r *RK2) SetServices(svc cca.Services) error {
	r.svc = svc
	if err := svc.RegisterUsesPort("mesh", TypeMeshPort); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("inviscidflux", TypeInviscidFluxPort); err != nil {
		return err
	}
	return svc.AddProvidesPort(r, "integrator", TypeIntegratorPort)
}

// ports lazily fetches the connected ports.
func (r *RK2) ports() (MeshPort, InviscidFluxPort) {
	if r.mesh == nil {
		p, err := r.svc.GetPort("mesh")
		if err != nil {
			panic(fmt.Sprintf("components: RK2 unwired: %v", err))
		}
		r.mesh = p.(MeshPort)
	}
	if r.ivf == nil {
		p, err := r.svc.GetPort("inviscidflux")
		if err != nil {
			panic(fmt.Sprintf("components: RK2 unwired: %v", err))
		}
		r.ivf = p.(InviscidFluxPort)
	}
	return r.mesh, r.ivf
}

// Advance implements IntegratorPort.
func (r *RK2) Advance(level int, dt float64) {
	mesh, ivf := r.ports()
	proc := procOf(r.svc)
	dx, dy := mesh.CellSize(level)

	// Stage 1: u1 = u0 + dt L(u0), in place, after a ghost update.
	mesh.GhostUpdate(level)
	patches := mesh.LocalPatches(level)
	u0 := make(map[int]*euler.Block, len(patches))
	for _, p := range patches {
		u0[p.Meta.ID] = p.Block.Clone(proc)
		fx := euler.NewEdgeField(proc, p.Block.Nx, p.Block.Ny, euler.X)
		fy := euler.NewEdgeField(proc, p.Block.Nx, p.Block.Ny, euler.Y)
		ivf.PatchFluxes(p.Block, fx, fy)
		euler.ApplyFluxes(proc, p.Block, p.Block, fx, fy, dt, dx, dy)
	}

	// Stage 2: u = (u0 + u1 + dt L(u1)) / 2, after refreshing ghosts.
	mesh.GhostUpdate(level)
	for _, p := range patches {
		fx := euler.NewEdgeField(proc, p.Block.Nx, p.Block.Ny, euler.X)
		fy := euler.NewEdgeField(proc, p.Block.Nx, p.Block.Ny, euler.Y)
		ivf.PatchFluxes(p.Block, fx, fy)
		euler.ApplyFluxes(proc, p.Block, p.Block, fx, fy, dt, dx, dy)
		euler.Average(proc, u0[p.Meta.ID], p.Block, p.Block)
	}

	// Subcycle the finer level (Ratio substeps), then restrict its more
	// accurate solution onto this one.
	if level+1 < mesh.NumLevels() && mesh.LevelPatchCount(level+1) > 0 {
		n := mesh.Ratio()
		for k := 0; k < n; k++ {
			r.Advance(level+1, dt/float64(n))
		}
		mesh.Restrict(level + 1)
	}
}
