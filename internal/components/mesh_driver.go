package components

import (
	"fmt"

	"repro/internal/amr"
	"repro/internal/cca"
	"repro/internal/euler"
	"repro/internal/mpi"
)

// AMRMesh manages the patch hierarchy; nearly all of the application's
// message passing (ghost updates and load-balance migrations, both drained
// with MPI_Waitsome) happens inside this component.
type AMRMesh struct {
	svc cca.Services
	cfg amr.Config
	h   *amr.Hierarchy
}

// NewAMRMesh returns a factory producing meshes with the given config.
func NewAMRMesh(cfg amr.Config) cca.Factory {
	return func() cca.Component { return &AMRMesh{cfg: cfg} }
}

// SetServices registers the provides port.
func (m *AMRMesh) SetServices(svc cca.Services) error {
	m.svc = svc
	return svc.AddProvidesPort(m, "mesh", TypeMeshPort)
}

// Hierarchy exposes the underlying hierarchy (for harness inspection).
func (m *AMRMesh) Hierarchy() *amr.Hierarchy { return m.h }

// Initialize implements MeshPort: collective hierarchy construction.
func (m *AMRMesh) Initialize() error {
	var rank *mpi.Rank
	if ctx := m.svc.Context(); ctx != nil {
		rank = ctx
	}
	h, err := amr.New(m.cfg, rank)
	if err != nil {
		return err
	}
	m.h = h
	return nil
}

// ensure panics if the mesh was not initialized — using the mesh before
// Initialize is an assembly ordering bug.
func (m *AMRMesh) ensure() *amr.Hierarchy {
	if m.h == nil {
		panic("components: AMRMesh used before Initialize")
	}
	return m.h
}

// NumLevels implements MeshPort.
func (m *AMRMesh) NumLevels() int { return m.ensure().NumLevels() }

// Ratio implements MeshPort.
func (m *AMRMesh) Ratio() int { return m.cfg.Ratio }

// LevelPatchCount implements MeshPort (replicated metadata: identical on
// every rank, so the recursion structure is globally consistent).
func (m *AMRMesh) LevelPatchCount(level int) int { return len(m.ensure().Level(level)) }

// LocalPatches implements MeshPort.
func (m *AMRMesh) LocalPatches(level int) []amr.PatchRef { return m.ensure().LocalPatches(level) }

// CellSize implements MeshPort.
func (m *AMRMesh) CellSize(level int) (float64, float64) { return m.ensure().CellSize(level) }

// GhostUpdate implements MeshPort.
func (m *AMRMesh) GhostUpdate(level int) { m.ensure().GhostExchange(level) }

// Regrid implements MeshPort.
func (m *AMRMesh) Regrid() { m.ensure().Regrid() }

// LoadBalance implements MeshPort.
func (m *AMRMesh) LoadBalance() int { return m.ensure().LoadBalance() }

// Restrict implements MeshPort.
func (m *AMRMesh) Restrict(fineLevel int) { m.ensure().Restrict(fineLevel) }

// GlobalMaxWaveSpeed implements MeshPort: local maximum reduced with
// MPI_Allreduce (a Fig. 3 profile row).
func (m *AMRMesh) GlobalMaxWaveSpeed() float64 {
	s := m.ensure().MaxWaveSpeed()
	if comm := commOf(m.svc); comm != nil {
		return comm.Allreduce(mpi.OpMax, []float64{s})[0]
	}
	return s
}

// Imbalance implements MeshPort.
func (m *AMRMesh) Imbalance() float64 { return m.ensure().Imbalance() }

// Stats implements MeshPort.
func (m *AMRMesh) Stats() []amr.LevelStats { return m.ensure().Stats() }

// DensityImage implements MeshPort.
func (m *AMRMesh) DensityImage() (int, int, []float64) { return m.ensure().DensityImage() }

// DriverConfig parameterizes the ShockDriver's main loop.
type DriverConfig struct {
	// Steps is the number of coarse time steps.
	Steps int
	// CFL is the Courant number for the stable time step.
	CFL float64
	// RegridInterval re-flags the hierarchy every so many coarse steps
	// (0 disables regridding).
	RegridInterval int
	// LoadBalanceThreshold triggers a redistribution when Imbalance()
	// exceeds it.
	LoadBalanceThreshold float64
	// MaxLoadBalances caps how many redistributions may happen (the
	// paper's run was load-balanced exactly once).
	MaxLoadBalances int
	// DtInterval recomputes the CFL time step (a global reduction) every
	// so many steps, reusing it in between — the usual SAMR economy that
	// keeps MPI_Allreduce off the profile's hot rows.
	DtInterval int
}

// DefaultDriverConfig returns the case-study loop parameters.
func DefaultDriverConfig() DriverConfig {
	return DriverConfig{
		Steps: 16, CFL: 0.4, RegridInterval: 4,
		LoadBalanceThreshold: 1.20, MaxLoadBalances: 1,
		DtInterval: 4,
	}
}

// ShockDriver orchestrates the simulation: MPI setup, the CFL-limited time
// loop over the recursive integrator, periodic regrids, and (once) a load
// balance. It provides the GoPort that the framework's "go" command
// invokes.
type ShockDriver struct {
	svc cca.Services
	cfg DriverConfig

	// StepsTaken and SimTime expose the run's progress for inspection.
	StepsTaken int
	SimTime    float64
	balances   int
}

// NewShockDriver returns a factory producing drivers with the given config.
func NewShockDriver(cfg DriverConfig) cca.Factory {
	return func() cca.Component { return &ShockDriver{cfg: cfg} }
}

// SetServices declares used ports and registers the GoPort.
func (d *ShockDriver) SetServices(svc cca.Services) error {
	d.svc = svc
	if err := svc.RegisterUsesPort("integrator", TypeIntegratorPort); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort("mesh", TypeMeshPort); err != nil {
		return err
	}
	return svc.AddProvidesPort(d, "go", TypeGoPort)
}

// Go implements cca.GoPort: the application main. The whole body runs
// under the "int main(int, char **)" timer so the profile's top row matches
// Fig. 3.
func (d *ShockDriver) Go() error {
	ctx := d.svc.Context()
	ip, err := d.svc.GetPort("integrator")
	if err != nil {
		return err
	}
	mp, err := d.svc.GetPort("mesh")
	if err != nil {
		return err
	}
	integrator := ip.(IntegratorPort)
	mesh := mp.(MeshPort)

	if ctx != nil {
		ctx.Prof.Start("int main(int, char **)", "TAU_DEFAULT")
		defer ctx.Prof.Stop("int main(int, char **)")
		ctx.Comm.Init()
		ctx.Comm.ErrhandlerSet()
		ctx.Comm.KeyvalCreate()
		// CCAFFEINE duplicates the world communicator per component cohort.
		for i := 0; i < 3; i++ {
			ctx.Comm.Dup()
		}
	}
	if err := mesh.Initialize(); err != nil {
		return fmt.Errorf("components: mesh initialization: %w", err)
	}
	if ctx != nil {
		ctx.Comm.Barrier()
	}

	dx, dy := mesh.CellSize(0)
	dtEvery := d.cfg.DtInterval
	if dtEvery <= 0 {
		dtEvery = 1
	}
	var dt float64
	for step := 0; step < d.cfg.Steps; step++ {
		if step%dtEvery == 0 {
			speed := mesh.GlobalMaxWaveSpeed()
			// A safety margin covers wave-speed drift between recomputes.
			dt = 0.9 * euler.CFLTimeStep(d.cfg.CFL, dx, dy, speed)
		}
		integrator.Advance(0, dt)
		d.SimTime += dt
		d.StepsTaken++
		if d.cfg.RegridInterval > 0 && (step+1)%d.cfg.RegridInterval == 0 && step != d.cfg.Steps-1 {
			mesh.Regrid()
			if d.balances < d.cfg.MaxLoadBalances && mesh.Imbalance() > d.cfg.LoadBalanceThreshold {
				mesh.LoadBalance()
				d.balances++
			}
		}
		if ctx != nil {
			ctx.Comm.Wtime()
		}
	}

	if ctx != nil {
		ctx.Comm.Barrier()
		ctx.Comm.Finalize()
	}
	return nil
}
