package repro

// One benchmark per table/figure of the paper's evaluation, plus ablation
// benches for the design choices called out in DESIGN.md. The benchmarks
// regenerate each figure's data on a reduced configuration and report the
// figure's headline quantity via b.ReportMetric, so `go test -bench .`
// doubles as a reproduction summary. All reported times are virtual
// microseconds on the simulated platform.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/amr"
	"repro/internal/assembly"
	"repro/internal/cache"
	"repro/internal/cca"
	"repro/internal/components"
	"repro/internal/euler"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/platform"
)

// benchCaseConfig is the reduced case study used by the figure benches.
func benchCaseConfig() CaseStudyConfig {
	cfg := DefaultCaseStudy()
	cfg.App.Mesh.BaseNx, cfg.App.Mesh.BaseNy = 48, 12
	cfg.App.Mesh.TileNx, cfg.App.Mesh.TileNy = 12, 6
	cfg.App.Driver.Steps = 8
	cfg.App.Driver.RegridInterval = 4
	return cfg
}

// benchSweepConfig is the reduced kernel sweep used by the figure benches.
func benchSweepConfig(k Kernel) SweepConfig {
	cfg := DefaultSweep(k)
	cfg.Sizes = harness.LogSizes(2_000, 120_000, 6)
	cfg.Reps = 2
	cfg.World.Procs = 2
	return cfg
}

var (
	caseOnce sync.Once
	caseRes  *CaseStudyResult
	caseErr  error

	sweepMu   sync.Mutex
	sweepRes  = map[Kernel]*SweepResult{}
	modelsRes = map[Kernel]*ComponentModel{}
)

// sharedCase runs the reduced case study once and shares it across benches
// that only read different projections of it.
func sharedCase(b *testing.B) *CaseStudyResult {
	b.Helper()
	caseOnce.Do(func() { caseRes, caseErr = RunCaseStudy(benchCaseConfig()) })
	if caseErr != nil {
		b.Fatal(caseErr)
	}
	return caseRes
}

// sharedSweep runs (and caches) the reduced sweep + fit for a kernel.
func sharedSweep(b *testing.B, k Kernel) (*SweepResult, *ComponentModel) {
	b.Helper()
	sweepMu.Lock()
	defer sweepMu.Unlock()
	if s, ok := sweepRes[k]; ok {
		return s, modelsRes[k]
	}
	s, err := RunSweep(benchSweepConfig(k))
	if err != nil {
		b.Fatal(err)
	}
	cm, err := FitModels(s)
	if err != nil {
		b.Fatal(err)
	}
	sweepRes[k] = s
	modelsRes[k] = cm
	return s, cm
}

// BenchmarkFig01ShockInterface regenerates the Fig. 1 density snapshot:
// the full SAMR shock/interface simulation. Reported metric: simulated
// cell-updates per wall second.
func BenchmarkFig01ShockInterface(b *testing.B) {
	cfg := benchCaseConfig()
	for i := 0; i < b.N; i++ {
		res, err := RunCaseStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Image) == 0 {
			b.Fatal("no density image")
		}
	}
}

// BenchmarkFig02Assembly measures assembling the Fig. 2 component wiring
// (instantiate + connect through the CCAFFEINE-style script).
func BenchmarkFig02Assembly(b *testing.B) {
	w := mpi.NewWorld(mpi.WorldConfig{Procs: 1, CPU: platform.XeonModel(),
		Cache: cache.XeonL2(), Net: mpi.DefaultConfig().Net, Seed: 1})
	err := w.Run(func(r *mpi.Rank) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := cca.NewFramework(r)
			if _, err := components.BuildApp(f, components.DefaultAppConfig()); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig03Profile regenerates the FUNCTION SUMMARY and reports the
// Fig. 3 headline: the MPI_Waitsome share of total time (paper: ~24.3%).
func BenchmarkFig03Profile(b *testing.B) {
	res := sharedCase(b)
	var share float64
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := res.WriteProfile(&sb); err != nil {
			b.Fatal(err)
		}
		share = res.TimerShare("MPI_Waitsome()")
	}
	b.ReportMetric(share*100, "%waitsome")
}

// BenchmarkFig04StatesModes regenerates the States mode comparison and
// reports mean per-element times of the two modes at the largest size.
func BenchmarkFig04StatesModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, _ := sharedSweep(b, KernelStates)
		var seqSum, seqN, strSum, strN float64
		for _, p := range s.Points {
			if p.Q < 100_000 {
				continue
			}
			if p.Mode == euler.X {
				seqSum += p.WallUS / float64(p.Q)
				seqN++
			} else {
				strSum += p.WallUS / float64(p.Q)
				strN++
			}
		}
		b.ReportMetric(seqSum/seqN*1000, "ns/elem-seq")
		b.ReportMetric(strSum/strN*1000, "ns/elem-strided")
	}
}

// BenchmarkFig05StridedRatio reports the strided/sequential ratio at the
// largest sweep size (paper: ~4) and the smallest (paper: ~1).
func BenchmarkFig05StridedRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, _ := sharedSweep(b, KernelStates)
		ratios := s.StridedRatios()
		var small, large, ns, nl float64
		for _, r := range ratios {
			if float64(r.Q) < 6_000 {
				small += r.Ratio
				ns++
			}
			if float64(r.Q) > 60_000 {
				large += r.Ratio
				nl++
			}
		}
		b.ReportMetric(small/ns, "ratio-smallQ")
		b.ReportMetric(large/nl, "ratio-largeQ")
	}
}

// BenchmarkFig06StatesModel fits the States power law and reports the
// exponent (paper Eq. 1: 1.19).
func BenchmarkFig06StatesModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, cm := sharedSweep(b, KernelStates)
		pl := cm.Mean.(perfmodel.PowerLaw)
		b.ReportMetric(pl.B, "exponent")
		b.ReportMetric(cm.MeanR2, "R2")
	}
}

// BenchmarkFig07GodunovModel fits the GodunovFlux linear model and reports
// the slope in us/element (paper Eq. 1: 0.315).
func BenchmarkFig07GodunovModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, cm := sharedSweep(b, KernelGodunov)
		lin := cm.Mean.(perfmodel.Poly)
		b.ReportMetric(lin.Coeffs[1]*1000, "ns/elem")
		sig := cm.Sigma.(perfmodel.Poly)
		b.ReportMetric(sig.Coeffs[1]*1000, "sigma-ns/elem")
	}
}

// BenchmarkFig08EFMModel fits the EFMFlux linear model and reports the
// slope (paper Eq. 1: 0.16) — below Godunov's.
func BenchmarkFig08EFMModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, cm := sharedSweep(b, KernelEFM)
		lin := cm.Mean.(perfmodel.Poly)
		b.ReportMetric(lin.Coeffs[1]*1000, "ns/elem")
	}
}

// BenchmarkFig09GhostCellComm reports the mean per-ghost-update MPI time
// (the Fig. 9 ordinate) across levels and ranks.
func BenchmarkFig09GhostCellComm(b *testing.B) {
	res := sharedCase(b)
	var mean float64
	for i := 0; i < b.N; i++ {
		pts := res.GhostCommSeries()
		if len(pts) == 0 {
			b.Fatal("no ghost comm points")
		}
		var sum float64
		for _, p := range pts {
			sum += p.MPIUS
		}
		mean = sum / float64(len(pts))
	}
	b.ReportMetric(mean, "us/exchange")
}

// BenchmarkFig10CompositeModel builds the application dual from the call
// trace and optimizes the flux-implementation choice; reports the composite
// cost and the cost gap between the two assemblies.
func BenchmarkFig10CompositeModel(b *testing.B) {
	res := sharedCase(b)
	_, god := sharedSweep(b, KernelGodunov)
	_, efm := sharedSweep(b, KernelEFM)
	_, sts := sharedSweep(b, KernelStates)
	models := map[Kernel]*ComponentModel{
		KernelGodunov: god, KernelEFM: efm, KernelStates: sts,
	}
	var gap float64
	for i := 0; i < b.N; i++ {
		dual := BuildDual(res, models)
		// Evaluate at a production workload (the fitted models' sampled
		// range); the test app's tiny patches sit below both intercepts.
		for _, name := range []string{"g_proxy", "sc_proxy"} {
			if v := dual.Vertex(name); v != nil {
				nv := *v
				nv.Q = 100_000
				dual.AddVertex(nv)
			}
		}
		opt := &Optimizer{Dual: dual, Slots: []assembly.Slot{FluxSlot("g_proxy", god, efm)}}
		_, ranking, err := opt.Optimize()
		if err != nil {
			b.Fatal(err)
		}
		if len(ranking) == 2 {
			gap = ranking[1].Cost - ranking[0].Cost
		}
	}
	b.ReportMetric(gap, "us-gap")
}

// BenchmarkEq1MeanModels reports all three mean-model headline parameters
// side by side (the Eq. 1 table).
func BenchmarkEq1MeanModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, sts := sharedSweep(b, KernelStates)
		_, god := sharedSweep(b, KernelGodunov)
		_, efm := sharedSweep(b, KernelEFM)
		b.ReportMetric(sts.Mean.(perfmodel.PowerLaw).B, "states-exp")
		b.ReportMetric(god.Mean.(perfmodel.Poly).Coeffs[1]*1000, "godunov-ns/elem")
		b.ReportMetric(efm.Mean.(perfmodel.Poly).Coeffs[1]*1000, "efm-ns/elem")
	}
}

// BenchmarkEq2StddevModels reports the sigma-model parameters (Eq. 2):
// Godunov's sigma grows with Q; EFM's stays far below.
func BenchmarkEq2StddevModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, god := sharedSweep(b, KernelGodunov)
		_, efm := sharedSweep(b, KernelEFM)
		b.ReportMetric(god.Sigma.(perfmodel.Poly).Coeffs[1]*1000, "godunov-sigma-ns/elem")
		var sgE, sgG float64
		for _, g := range efm.Stats {
			sgE += g.StdDev
		}
		for _, g := range god.Stats {
			sgG += g.StdDev
		}
		b.ReportMetric(sgE/sgG, "efm/godunov-sigma")
	}
}

// --- Scheduler benchmarks (serial vs conservative vs optimistic) ---

// benchComputeBody is a non-communicating compute segment: real euler
// kernel work (States + EFMFlux sweeps) charged to the rank's platform,
// with no MPI between start and finish. This is the workload where the
// conservative parallel scheduler's rank concurrency pays off linearly in
// available cores; on a 1-core host the two schedulers tie.
func benchComputeBody(r *mpi.Rank) {
	proc := r.Proc
	const nx, ny = 96, 48
	blk := euler.NewBlock(proc, nx, ny, 2)
	pr := euler.DefaultShockInterface()
	pr.InitBlock(blk, 0, 0, pr.Lx/nx, pr.Ly/ny)
	blk.FillBoundary(true, true, true, true)
	qL := euler.NewEdgeField(proc, nx, ny, euler.X)
	qR := euler.NewEdgeField(proc, nx, ny, euler.X)
	fl := euler.NewEdgeField(proc, nx, ny, euler.X)
	for i := 0; i < 20; i++ {
		euler.States(proc, blk, euler.X, qL, qR)
		euler.EFMFlux(proc, qL, qR, fl)
	}
}

// benchGhostCommBody is the comm-heavy counterpart to benchComputeBody: a
// ring halo exchange trading many small messages with only a sliver of
// compute between them, closed by a periodic Allreduce. This is the
// workload where the conservative scheduler's win evaporates — every
// blocking Recv is an order-sensitive shared op that serializes rank
// progress under the commit token — and where the optimistic scheduler's
// pipelined specific-source receive path pays off: each Recv completes the
// moment its (already published) message is found, with the commit
// automaton validating the serial order behind the ranks' backs.
func benchGhostCommBody(r *mpi.Rank) {
	c := r.Comm
	me, p := c.Rank(), c.Size()
	left, right := (me+p-1)%p, (me+1)%p
	halo := make([]float64, 64)
	for i := range halo {
		halo[i] = float64(me*64 + i)
	}
	recvL := make([]float64, 64)
	recvR := make([]float64, 64)
	sum := []float64{0}
	for step := 0; step < 48; step++ {
		c.Isend(left, step, halo)
		c.Isend(right, step, halo)
		c.Recv(left, step, recvL)
		c.Recv(right, step, recvR)
		acc := 0.0
		for k := 0; k < 4000; k++ {
			acc += recvL[k%64] - recvR[k%64]*1e-9
		}
		sum[0] += acc
		r.Proc.ChargeFlops(4000)
		r.Proc.Advance(20)
		if step%16 == 15 {
			c.Allreduce(mpi.OpSum, sum)
		}
	}
}

// benchWildcardBody is the rollback-heavy workload: rank 0 drains a burst
// of wildcard receives from every peer, and under the optimistic scheduler
// every wildcard match is a speculation the commit automaton must validate
// against the serial arrival order. Skewed sender clocks make mismatches
// routine, so this is the body that drives conflicts, rollbacks and the
// adaptive window's multiplicative shrink.
func benchWildcardBody(r *mpi.Rank) {
	c := r.Comm
	me, p := c.Rank(), c.Size()
	if me == 0 {
		buf := make([]float64, 32)
		for i := 0; i < (p-1)*16; i++ {
			c.Recv(mpi.AnySource, mpi.AnyTag, buf)
		}
	} else {
		payload := make([]float64, 32)
		for i := range payload {
			payload[i] = float64(me*32 + i)
		}
		for i := 0; i < 16; i++ {
			r.Proc.Advance(float64((me*7+i*13)%29) * 10)
			c.Send(0, i%4, payload)
		}
	}
	c.Barrier()
}

// benchCollectiveBody is the collective-heavy workload: back-to-back
// Allreduce rounds (with periodic Bcasts) separated by slivers of skewed
// compute. This is what the speculative-collective path targets — a rank
// whose peers have all published their contributions computes the result
// itself and keeps running instead of parking on the commit token.
func benchCollectiveBody(r *mpi.Rank) {
	c := r.Comm
	me := c.Rank()
	val := []float64{float64(me)}
	buf := make([]float64, 8)
	for i := range buf {
		buf[i] = float64(me*8 + i)
	}
	for step := 0; step < 64; step++ {
		r.Proc.ChargeFlops(500)
		r.Proc.Advance(float64((me*11 + step*5) % 17))
		res := c.Allreduce(mpi.OpSum, val)
		val[0] = res[0] * 0.5
		if step%8 == 7 {
			c.Bcast(0, buf)
		}
	}
}

// BenchmarkWorldRun compares the serial token scheduler against the
// conservative and optimistic parallel schedulers at 4/8/16 ranks, on a
// pure compute segment, on a comm-heavy ghost exchange, on a
// wildcard-heavy rollback stress, on a collective-heavy round loop, and on
// the Fig. 3 profile workload (the full component application with ghost
// exchanges). Virtual results are bit-identical by design — the reported
// wall-clock ratio is the whole point: on a >= 4 core host the compute
// segment runs >= 2x faster at 8+ ranks under "par" and "opt", because
// rank compute executes concurrently, and the ghost and collective bodies
// additionally favor "opt", whose speculative receive and collective paths
// pipeline the very communication that serializes "par" behind the commit
// token. The opt sub-benches report speculation telemetry: pipelined ops
// and rollbacks (ghost), conflicts plus the adaptive window's observed
// min/max (wildcard), and speculative-collective hits/rollbacks (coll).
func BenchmarkWorldRun(b *testing.B) {
	modes := []mpi.SchedulerMode{mpi.Serial, mpi.ConservativeParallel, mpi.OptimisticParallel}
	for _, p := range []int{4, 8, 16} {
		for _, mode := range modes {
			p, mode := p, mode
			b.Run(fmt.Sprintf("compute/p%d/%s", p, mode), func(b *testing.B) {
				cfg := mpi.DefaultConfig()
				cfg.Procs = p
				cfg.Sched = mode
				for i := 0; i < b.N; i++ {
					w := mpi.NewWorld(cfg)
					if err := w.Run(benchComputeBody); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	for _, p := range []int{4, 8, 16} {
		for _, mode := range modes {
			p, mode := p, mode
			b.Run(fmt.Sprintf("ghost/p%d/%s", p, mode), func(b *testing.B) {
				cfg := mpi.DefaultConfig()
				cfg.Procs = p
				cfg.Sched = mode
				var spec mpi.SpecStats
				for i := 0; i < b.N; i++ {
					w := mpi.NewWorld(cfg)
					if err := w.Run(benchGhostCommBody); err != nil {
						b.Fatal(err)
					}
					spec = w.SpecStats()
				}
				if mode == mpi.OptimisticParallel {
					b.ReportMetric(float64(spec.PipelinedOps), "pipelined-ops")
					b.ReportMetric(float64(spec.Rollbacks), "rollbacks")
				}
			})
		}
	}
	for _, p := range []int{4, 8, 16} {
		for _, mode := range modes {
			p, mode := p, mode
			b.Run(fmt.Sprintf("wildcard/p%d/%s", p, mode), func(b *testing.B) {
				cfg := mpi.DefaultConfig()
				cfg.Procs = p
				cfg.Sched = mode
				var spec mpi.SpecStats
				for i := 0; i < b.N; i++ {
					w := mpi.NewWorld(cfg)
					if err := w.Run(benchWildcardBody); err != nil {
						b.Fatal(err)
					}
					spec = w.SpecStats()
				}
				if mode == mpi.OptimisticParallel {
					b.ReportMetric(float64(spec.Conflicts), "conflicts")
					b.ReportMetric(float64(spec.Rollbacks), "rollbacks")
					b.ReportMetric(float64(spec.WindowMin), "window-min")
					b.ReportMetric(float64(spec.WindowMax), "window-max")
				}
			})
		}
	}
	for _, p := range []int{4, 8, 16} {
		for _, mode := range modes {
			p, mode := p, mode
			b.Run(fmt.Sprintf("coll/p%d/%s", p, mode), func(b *testing.B) {
				cfg := mpi.DefaultConfig()
				cfg.Procs = p
				cfg.Sched = mode
				var spec mpi.SpecStats
				for i := 0; i < b.N; i++ {
					w := mpi.NewWorld(cfg)
					if err := w.Run(benchCollectiveBody); err != nil {
						b.Fatal(err)
					}
					spec = w.SpecStats()
				}
				if mode == mpi.OptimisticParallel {
					b.ReportMetric(float64(spec.SpecCollHits), "spec-coll-hits")
					b.ReportMetric(float64(spec.SpecCollRollbacks), "spec-coll-rollbacks")
					b.ReportMetric(float64(spec.WindowMin), "window-min")
					b.ReportMetric(float64(spec.WindowMax), "window-max")
				}
			})
		}
	}
	for _, mode := range modes {
		mode := mode
		b.Run("fig3profile/"+mode.String(), func(b *testing.B) {
			cfg := benchCaseConfig()
			cfg.World.Sched = mode
			var share float64
			for i := 0; i < b.N; i++ {
				res, err := RunCaseStudy(cfg)
				if err != nil {
					b.Fatal(err)
				}
				share = res.TimerShare("MPI_Waitsome()")
			}
			b.ReportMetric(share*100, "%waitsome")
		})
	}
}

// --- Kernel micro-benchmarks (real Go work plus platform charging) ---

func kernelFixture(nx, ny int) (*platform.Proc, *euler.Block) {
	proc := platform.NewProc(0, platform.XeonModel(), cache.XeonL2(), 7)
	blk := euler.NewBlock(proc, nx, ny, 2)
	pr := euler.DefaultShockInterface()
	pr.InitBlock(blk, 0, 0, pr.Lx/float64(nx), pr.Ly/float64(ny))
	blk.FillBoundary(true, true, true, true)
	return proc, blk
}

func BenchmarkStatesKernelSequential(b *testing.B) {
	proc, blk := kernelFixture(256, 128)
	qL := euler.NewEdgeField(proc, 256, 128, euler.X)
	qR := euler.NewEdgeField(proc, 256, 128, euler.X)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		euler.States(proc, blk, euler.X, qL, qR)
	}
}

func BenchmarkStatesKernelStrided(b *testing.B) {
	proc, blk := kernelFixture(256, 128)
	qL := euler.NewEdgeField(proc, 256, 128, euler.Y)
	qR := euler.NewEdgeField(proc, 256, 128, euler.Y)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		euler.States(proc, blk, euler.Y, qL, qR)
	}
}

func BenchmarkEFMFluxKernel(b *testing.B) {
	proc, blk := kernelFixture(256, 128)
	qL := euler.NewEdgeField(proc, 256, 128, euler.X)
	qR := euler.NewEdgeField(proc, 256, 128, euler.X)
	fl := euler.NewEdgeField(proc, 256, 128, euler.X)
	euler.States(proc, blk, euler.X, qL, qR)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		euler.EFMFlux(proc, qL, qR, fl)
	}
}

func BenchmarkGodunovFluxKernel(b *testing.B) {
	proc, blk := kernelFixture(256, 128)
	qL := euler.NewEdgeField(proc, 256, 128, euler.X)
	qR := euler.NewEdgeField(proc, 256, 128, euler.X)
	fl := euler.NewEdgeField(proc, 256, 128, euler.X)
	euler.States(proc, blk, euler.X, qL, qR)
	b.ReportAllocs()
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		iters = euler.GodunovFlux(proc, qL, qR, fl)
	}
	b.ReportMetric(float64(iters)/float64(fl.Len()), "newton-iters/face")
}

func BenchmarkGhostExchange(b *testing.B) {
	cfg := mpi.DefaultConfig()
	w := mpi.NewWorld(cfg)
	err := w.Run(func(r *mpi.Rank) {
		acfg := amr.DefaultConfig()
		h, err := amr.New(acfg, r)
		if err != nil {
			panic(err)
		}
		if r.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			for lev := 0; lev < h.NumLevels(); lev++ {
				h.GhostExchange(lev)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// --- Ablation benches (DESIGN.md Section 5) ---

// BenchmarkAblationProxyOverhead compares monitored vs unmonitored
// assemblies and reports the proxy+Mastermind overhead in percent of
// virtual run time (the paper claims it is small).
func BenchmarkAblationProxyOverhead(b *testing.B) {
	run := func(monitor bool) float64 {
		cfg := benchCaseConfig()
		cfg.App.Monitor = monitor
		res, err := RunCaseStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.MeanSummary() {
			if row.Name == "int main(int, char **)" {
				return row.InclusiveUS
			}
		}
		b.Fatal("no main timer")
		return 0
	}
	var overheadPct float64
	for i := 0; i < b.N; i++ {
		with := run(true)
		without := run(false)
		overheadPct = (with - without) / without * 100
	}
	b.ReportMetric(overheadPct, "%overhead")
}

// BenchmarkAblationCacheAssoc compares conflict-miss counts under
// direct-mapped vs 8-way caches of the same size: four hot addresses
// spaced one full cache apart collide in a single direct-mapped set but
// coexist in an 8-way set.
func BenchmarkAblationCacheAssoc(b *testing.B) {
	run := func(assoc int) float64 {
		c := cache.New(cache.Config{SizeBytes: 512 * 1024, LineBytes: 64, Assoc: assoc})
		const hot = 4
		for pass := 0; pass < 256; pass++ {
			for k := 0; k < hot; k++ {
				c.Access(uint64(k) * 512 * 1024)
			}
		}
		return float64(c.Stats().Misses)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = run(1) / run(8)
	}
	b.ReportMetric(ratio, "direct/8way-misses")
}

// BenchmarkAblationWaitPolicy compares draining ghost-exchange receives
// with Waitsome (incremental) vs Waitall (bulk) on an imbalanced pattern;
// reported metric is the virtual-time ratio (≈1: the policies cost the
// same here, the paper's choice is about overlap opportunity).
func BenchmarkAblationWaitPolicy(b *testing.B) {
	run := func(some bool) float64 {
		cfg := mpi.DefaultConfig()
		cfg.Net.NoiseSigma = 0
		w := mpi.NewWorld(cfg)
		var t0 float64
		err := w.Run(func(r *mpi.Rank) {
			me := r.Rank()
			r.Proc.Advance(float64(me) * 300)
			var reqs []*mpi.Request
			bufs := make([][]float64, 3)
			for peer := 0; peer < 3; peer++ {
				if peer == me {
					continue
				}
				bufs[peer] = make([]float64, 512)
				reqs = append(reqs, r.Comm.Irecv(peer, 0, bufs[peer]))
			}
			payload := make([]float64, 512)
			for peer := 0; peer < 3; peer++ {
				if peer != me {
					r.Comm.Isend(peer, 0, payload)
				}
			}
			if some {
				for r.Comm.Waitsome(reqs) != nil {
				}
			} else {
				r.Comm.Waitall(reqs)
			}
			if me == 0 {
				t0 = r.Proc.Now()
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		return t0
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = run(true) / run(false)
	}
	b.ReportMetric(ratio, "waitsome/waitall")
}

// BenchmarkAblationLoadBalance reports the imbalance before and after the
// redistribution (the Fig. 9 regrid/balance event).
func BenchmarkAblationLoadBalance(b *testing.B) {
	var before, after float64
	for i := 0; i < b.N; i++ {
		cfg := mpi.DefaultConfig()
		w := mpi.NewWorld(cfg)
		err := w.Run(func(r *mpi.Rank) {
			acfg := amr.DefaultConfig()
			h, err := amr.New(acfg, r)
			if err != nil {
				panic(err)
			}
			bf := h.Imbalance()
			h.LoadBalance()
			af := h.Imbalance()
			if r.Rank() == 0 {
				before, after = bf, af
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(before, "imbalance-before")
	b.ReportMetric(after, "imbalance-after")
}

// BenchmarkExtCacheAwareModel measures the Section 6 extension: folding
// the recorded PAPI_L2_DCM deltas into the model. Reported metric: R² gain
// over the Q-only fit.
func BenchmarkExtCacheAwareModel(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		s, _ := sharedSweep(b, KernelStates)
		_, r2Aware, r2Plain, err := harness.CacheAwareFit(s)
		if err != nil {
			b.Fatal(err)
		}
		gain = r2Aware - r2Plain
	}
	b.ReportMetric(gain, "R2-gain")
}

// BenchmarkExtCacheStudy refits the States model under halved/doubled
// caches; reported metric: predicted time ratio (128 kB / 1 MB) at Q=80k —
// the coefficient sensitivity the paper's Section 6 predicts.
func BenchmarkExtCacheStudy(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		base := benchSweepConfig(KernelStates)
		pts, err := harness.RunCacheStudy(base, []int{128, 1024})
		if err != nil {
			b.Fatal(err)
		}
		ratio = pts[0].Model.Mean.Predict(80_000) / pts[1].Model.Mean.Predict(80_000)
	}
	b.ReportMetric(ratio, "T128kB/T1MB")
}

// BenchmarkAblationModeAveraging compares the paper's mode-averaged model
// against per-mode models: reported metric is the RMSE ratio (averaged /
// per-mode), quantifying what the averaging costs in fidelity.
func BenchmarkAblationModeAveraging(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		s, cm := sharedSweep(b, KernelStates)
		qAll, wAll := s.AllSeries()
		avgRMSE := perfmodel.RMSE(cm.Mean, qAll, wAll)
		var perModeRMSE float64
		for _, mode := range []euler.Dir{euler.X, euler.Y} {
			q, wl := s.ModeSeries(mode)
			fit, err := perfmodel.PowerLawFit(q, wl)
			if err != nil {
				b.Fatal(err)
			}
			perModeRMSE += perfmodel.RMSE(fit, q, wl) * float64(len(q))
		}
		perModeRMSE /= float64(len(qAll))
		ratio = avgRMSE / perModeRMSE
	}
	b.ReportMetric(ratio, "avg/permode-rmse")
}
