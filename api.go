package repro

import (
	"context"
	"io"

	"repro/internal/assembly"
	"repro/internal/campaign"
	"repro/internal/components"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/results"
	"repro/internal/results/serve"
	"repro/internal/results/store"
	"repro/internal/results/store/lease"
)

// Re-exported configuration and result types of the experiment harness.
type (
	// CaseStudyConfig configures an end-to-end run of the paper's
	// application (assembly + simulated machine).
	CaseStudyConfig = harness.CaseStudyConfig
	// CaseStudyResult carries the profiles, records, call trace, density
	// image and wiring diagram of one run.
	CaseStudyResult = harness.CaseStudyResult
	// SweepConfig drives the Figs. 4-8 kernel measurement campaign.
	SweepConfig = harness.SweepConfig
	// SweepResult holds the campaign's proxy-recorded samples.
	SweepResult = harness.SweepResult
	// ComponentModel is a fitted Eq. 1/Eq. 2 performance model.
	ComponentModel = harness.ComponentModel
	// Kernel selects one of the three measured components.
	Kernel = harness.Kernel
	// AppConfig assembles the component application.
	AppConfig = components.AppConfig
	// WorldConfig describes the simulated parallel machine.
	WorldConfig = mpi.WorldConfig
	// Model is a fitted performance model (polynomial or power law).
	Model = perfmodel.Model
	// Dual is the application's composite-model graph (Fig. 10).
	Dual = assembly.Dual
	// Optimizer selects among component implementations by predicted cost
	// under a Quality-of-Service floor.
	Optimizer = assembly.Optimizer

	// CampaignJob is one schedulable experiment (a self-contained
	// simulated-machine run) in a campaign's job graph.
	CampaignJob = campaign.Job
	// CampaignConfig tunes campaign execution: worker count, fail-fast,
	// progress reporting. Worker count never changes results.
	CampaignConfig = campaign.Config
	// CampaignResult is one job's outcome, in submission order.
	CampaignResult = campaign.Result
	// CampaignEvent is one serialized progress report.
	CampaignEvent = campaign.Event
	// Grid cross-products first-class axes (Dimension values) times seed
	// replications into scenario sets.
	Grid = campaign.Grid
	// Dimension is one first-class grid axis: a stable name plus an
	// ordered value list. Build them with RankAxis, NetAxis, CacheAxis,
	// CPUAxis, MeshAxis, FluxAxis — or literally, for custom parameters.
	Dimension = campaign.Dimension
	// DimValue is one value along a Dimension: a stable key token, a
	// payload, and an optional world mutation.
	DimValue = campaign.DimValue
	// Coord locates a scenario along one grid axis.
	Coord = campaign.Coord
	// Scenario is one expanded grid point with its derived seed and its
	// coordinate on every axis.
	Scenario = campaign.Scenario
	// NamedNet labels an interconnect model for scenario keys.
	NamedNet = campaign.NamedNet
	// MeshSize is one app-level base-mesh dimension choice of a Grid.
	MeshSize = campaign.MeshSize
	// CPUTune scales the simulated CPU model (clock, hit/miss penalties);
	// the zero value leaves calibrated timings bit-for-bit unchanged.
	CPUTune = mpi.CPUTune
	// SchedulerMode selects how a simulated world schedules its ranks: the
	// zero value is the serial token scheduler; ConservativeParallel runs
	// rank compute concurrently; OptimisticParallel speculates past
	// order-sensitive communication with rollback. All modes produce
	// bit-for-bit identical results.
	SchedulerMode = mpi.SchedulerMode
	// SpecStats is the optimistic scheduler's speculation telemetry
	// (published sends, pipelined ops, conflicts, rollbacks, re-executed
	// virtual time, adaptive-window range and speculative-collective
	// hits/rollbacks).
	SpecStats = mpi.SpecStats
	// SchedChoice is one value of the scheduler grid axis: a mode plus its
	// parallel-rank cap and optimistic speculation-window bounds.
	SchedChoice = campaign.SchedChoice
	// GridSweep is one grid scenario's sweep result and fitted model.
	GridSweep = harness.GridSweep
	// GridPoint is one streamed grid scenario's distilled outcome
	// (coordinates, kernel, fitted model — no buffered sweep).
	GridPoint = harness.GridPoint
	// CachePoint is one cache-size sample of the Section 6 study.
	CachePoint = harness.CachePoint

	// Row is one streamed result record: an ordered list of named fields.
	Row = results.Row
	// Field is one named value of a Row.
	Field = results.Field
	// Sink consumes result rows emitted by campaign jobs.
	Sink = results.Sink
	// MemorySink buffers rows per key in memory.
	MemorySink = results.MemorySink
	// AggSink folds rows into running per-key statistics, never retaining
	// the rows themselves.
	AggSink = results.AggSink
	// CSVShardSink writes one CSV shard file per result key.
	CSVShardSink = results.CSVShardSink
	// BinShardSink writes one binary row shard per result key — the
	// compact, byte-deterministic sibling of the CSV shards, preferred by
	// the results service.
	BinShardSink = results.BinShardSink
	// ResultsService answers performance-model queries (predict, trend,
	// scenario lookup) over a finished campaign's rows directory through a
	// read-through model cache. cmd/resultsd is this type behind a listener.
	ResultsService = serve.Service
	// ResultsServiceOptions tunes a ResultsService (cache capacity,
	// observer).
	ResultsServiceOptions = serve.Options
	// Stat is a running aggregate of one numeric field under one key.
	Stat = results.Stat
	// CheckpointStore persists finished campaign-job payloads keyed by
	// (job key, config hash) under a cache directory.
	CheckpointStore = store.Store
	// Claimer arbitrates job ownership among independent campaign
	// processes partitioning one grid over a shared store.
	Claimer = campaign.Claimer
	// ClaimState is a Claimer's verdict on one job: busy, run here, or
	// completed elsewhere.
	ClaimState = campaign.ClaimState
	// LeaseManager is the file-based Claimer: per-job lease files under the
	// shared store directory, with heartbeats and stale-lease stealing, so
	// N processes split a grid with zero duplicated executions and no
	// coordinator.
	LeaseManager = lease.Manager
	// LeaseOptions tunes the lease protocol (heartbeat TTL and renewal
	// interval).
	LeaseOptions = lease.Options

	// Observer bundles the span tracer and the metrics registry the
	// instrumented layers (campaign, store, lease, mpi) record into.
	Observer = obs.Observer
	// ObserverOptions configures NewObserver (per-track ring capacity).
	ObserverOptions = obs.Options
	// Tracer records spans and instants onto named tracks and exports
	// Chrome trace-event JSON.
	Tracer = obs.Tracer
	// TraceTrack is one trace lane (a ring buffer under its own mutex);
	// a nil track records nothing.
	TraceTrack = obs.Track
	// TraceFile is a parsed or exported Chrome trace-event document.
	TraceFile = obs.TraceFile
	// MetricsRegistry holds named counters, gauges and fixed-bucket
	// histograms with text exposition.
	MetricsRegistry = obs.Registry
	// MetricsServer is the live /metrics + /trace HTTP endpoint started
	// by Observer.Serve.
	MetricsServer = obs.MetricsServer
	// OwnerExec is one completed job execution attributed to a lease
	// owner, recovered from the store's audit log.
	OwnerExec = obs.OwnerExec
	// OwnerStat is one fleet member's row in the throughput report.
	OwnerStat = obs.OwnerStat
	// LeaseAuditEntry is one parsed line of an owner's audit log.
	LeaseAuditEntry = lease.AuditEntry

	// TrendReport is one kernel's coefficient-vs-axis analysis.
	TrendReport = harness.TrendReport
	// TrendAxis selects the numeric grid dimension trend reports fit model
	// coefficients against.
	TrendAxis = harness.TrendAxis
	// TrendPoint is one axis value's averaged model coefficients.
	TrendPoint = harness.TrendPoint
	// TrendFit is one coefficient's fitted trend against the axis.
	TrendFit = harness.TrendFit
)

// Built-in trend axes for BuildTrends: cache size in kB (the original
// Section 6 study), CPU clock scale, rank count and base-mesh cell count.
var (
	TrendCacheKB   = harness.TrendCacheKB
	TrendCPUClock  = harness.TrendCPUClock
	TrendRanks     = harness.TrendRanks
	TrendMeshCells = harness.TrendMeshCells
)

// Measured kernels.
const (
	KernelStates  = harness.KernelStates
	KernelGodunov = harness.KernelGodunov
	KernelEFM     = harness.KernelEFM
)

// Scheduler modes for WorldConfig.Sched: the serial token scheduler (the
// zero value); the conservative parallel-rank scheduler, which runs rank
// compute segments concurrently; and the optimistic (Time Warp) scheduler,
// which additionally speculates past order-sensitive communication under
// an undo log and rolls back on conflicts. All three produce bit-for-bit
// identical profiles, clocks and outputs.
const (
	SchedSerial               = mpi.Serial
	SchedConservativeParallel = mpi.ConservativeParallel
	SchedOptimisticParallel   = mpi.OptimisticParallel
)

// DefaultCaseStudy returns the calibrated paper configuration (3 ranks,
// 3-level SAMR hierarchy, Godunov flux, monitored).
func DefaultCaseStudy() CaseStudyConfig { return harness.DefaultCaseStudy() }

// RunCaseStudy executes the assembled application and gathers per-rank
// measurements.
func RunCaseStudy(cfg CaseStudyConfig) (*CaseStudyResult, error) {
	return harness.RunCaseStudy(cfg)
}

// DefaultSweep returns the calibrated Figs. 4-8 sweep for a kernel.
func DefaultSweep(k Kernel) SweepConfig { return harness.DefaultSweep(k) }

// RunSweep measures a kernel through the full PMM stack over a size sweep.
func RunSweep(cfg SweepConfig) (*SweepResult, error) { return harness.RunSweep(cfg) }

// FitModels performs the paper's Section 5 regression analysis on a sweep.
func FitModels(s *SweepResult) (*ComponentModel, error) { return harness.FitModels(s) }

// WriteModelReport prints the paper-vs-measured Eq. 1/Eq. 2 comparison.
func WriteModelReport(w io.Writer, cm *ComponentModel) error {
	return harness.WriteModelReport(w, cm)
}

// BuildDual constructs the Fig. 10 composite-model graph from a case-study
// call trace and fitted models.
func BuildDual(res *CaseStudyResult, models map[Kernel]*ComponentModel) *Dual {
	return harness.BuildDual(res, models)
}

// FluxSlot builds the paper's GodunovFlux-vs-EFMFlux implementation choice
// for the optimizer.
func FluxSlot(vertex string, godunov, efm *ComponentModel) assembly.Slot {
	return harness.FluxSlot(vertex, godunov, efm)
}

// RunCampaign executes a job graph on a worker pool and returns results in
// submission order; results are byte-identical for any worker count.
func RunCampaign(ctx context.Context, cfg CampaignConfig, jobs []CampaignJob) ([]CampaignResult, error) {
	return campaign.Run(ctx, cfg, jobs)
}

// DeriveSeed maps a campaign base seed and a stable job key to that job's
// machine seed, independent of scheduling.
func DeriveSeed(base int64, key string) int64 { return campaign.DeriveSeed(base, key) }

// SweepJob wraps RunSweep as a checkpointable campaign job that streams
// its telemetry rows to the campaign sink.
func SweepJob(key string, cfg SweepConfig) CampaignJob { return harness.SweepJob(key, cfg) }

// CaseStudyJob wraps RunCaseStudy as a checkpointable campaign job that
// streams its FUNCTION SUMMARY rows to the campaign sink.
func CaseStudyJob(key string, cfg CaseStudyConfig) CampaignJob {
	return harness.CaseStudyJob(key, cfg)
}

// ModelJob fits Eq. 1/2 models to the sweep job named sweepKey (cfg is
// that sweep's config, which makes the fit checkpointable).
func ModelJob(key, sweepKey string, cfg SweepConfig) CampaignJob {
	return harness.ModelJob(key, sweepKey, cfg)
}

// RunSweeps measures several kernels concurrently as one campaign.
func RunSweeps(ctx context.Context, cc CampaignConfig, cfgs []SweepConfig) ([]*SweepResult, error) {
	return harness.RunSweeps(ctx, cc, cfgs)
}

// RunCacheStudy refits a kernel's model under each cache size (in kB),
// one parallel campaign job per size.
func RunCacheStudy(ctx context.Context, cc CampaignConfig, base SweepConfig, cacheKBs []int) ([]CachePoint, error) {
	return harness.RunCacheStudyCampaign(ctx, cc, base, cacheKBs)
}

// RunSweepGrid expands a scenario grid into sweep-and-fit jobs and runs
// them as one campaign, buffering every scenario's full SweepResult. For
// grids too large for that, use StreamSweepGrid.
func RunSweepGrid(ctx context.Context, cc CampaignConfig, base SweepConfig, g Grid) ([]GridSweep, error) {
	return harness.RunSweepGrid(ctx, cc, base, g)
}

// StreamSweepGrid runs a scenario grid with streaming results: telemetry
// rows go to cc.Sink and only the fitted GridPoints come back, so memory
// stays bounded as the grid grows. With cc.Store set, finished scenarios
// checkpoint and an interrupted grid resumes without re-running them.
func StreamSweepGrid(ctx context.Context, cc CampaignConfig, base SweepConfig, g Grid) ([]GridPoint, error) {
	return harness.StreamSweepGrid(ctx, cc, base, g)
}

// OpenStore opens (creating if needed) a checkpoint store directory for
// CampaignConfig.Store.
func OpenStore(dir string) (*CheckpointStore, error) { return store.Open(dir) }

// Claim states a Claimer reports: held by another live process (retry
// later), granted to the caller (run, then Release), or completed
// elsewhere (the store holds the payload).
const (
	ClaimBusy = campaign.ClaimBusy
	ClaimRun  = campaign.ClaimRun
	ClaimDone = campaign.ClaimDone
)

// OpenLeaseManager attaches a lease-protocol Claimer for the given worker
// identity to a shared store; set it as CampaignConfig.Claimer alongside
// the store and Close it after the campaign returns.
func OpenLeaseManager(st *CheckpointStore, owner string, opts LeaseOptions) (*LeaseManager, error) {
	return lease.Open(st, owner, opts)
}

// DistributedCampaignConfig equips a campaign config for coordinator-free
// multi-process execution against the shared store directory: each job
// runs in exactly one of the processes and is replayed from the store by
// the rest, so every process's output is byte-identical to a
// single-process run. Close the returned manager after the campaign.
func DistributedCampaignConfig(cc CampaignConfig, dir, owner string, opts LeaseOptions) (CampaignConfig, *LeaseManager, error) {
	return harness.DistributedConfig(cc, dir, owner, opts)
}

// ReadLeaseAudit collects every worker's completed-execution log under a
// shared store: job key to the owners that executed it. One owner per key
// proves a campaign ran with zero duplicated executions.
func ReadLeaseAudit(st *CheckpointStore) (map[string][]string, error) {
	return lease.ReadAudit(st)
}

// ReadLeaseAuditEntries is ReadLeaseAudit with the full per-execution
// detail (owner, key, elapsed time, end timestamp) — the input to the
// per-owner throughput report.
func ReadLeaseAuditEntries(st *CheckpointStore) ([]LeaseAuditEntry, error) {
	return lease.ReadAuditEntries(st)
}

// NewObserver builds an observer with a fresh tracer and registry.
func NewObserver(opts ObserverOptions) *Observer { return obs.New(opts) }

// EnableObserver installs the process-global observer picked up by the
// campaign engine, the MPI world, the checkpoint store and the lease
// manager. Those layers capture their instruments at construction time,
// so enable before OpenStore/OpenLeaseManager/RunCampaign. Observation
// is write-only: an observed run's outputs, scenario keys, checkpoint
// hashes and seeds are byte-identical to an unobserved run's.
func EnableObserver(o *Observer) { obs.Enable(o) }

// DisableObserver removes the process-global observer.
func DisableObserver() { obs.Disable() }

// ActiveObserver returns the process-global observer, or nil.
func ActiveObserver() *Observer { return obs.Active() }

// WriteOwnerReport renders the per-owner throughput table from lease
// audit executions (convert LeaseAuditEntry values via OwnerExec).
func WriteOwnerReport(w io.Writer, execs []OwnerExec) error {
	return obs.WriteOwnerReport(w, execs)
}

// WriteTrackReport renders the per-track (worker/rank/owner) summary of
// a parsed trace.
func WriteTrackReport(w io.Writer, tf *TraceFile) error {
	return obs.WriteTrackReport(w, tf)
}

// ParseTrace reads a Chrome trace-event JSON document; ValidateTrace
// checks it against the structural rules chrome://tracing relies on.
func ParseTrace(data []byte) (*TraceFile, error) { return obs.ParseTrace(data) }
func ValidateTrace(tf *TraceFile) error          { return obs.ValidateTrace(tf) }

// NewMemorySink returns a Sink buffering rows per key in memory.
func NewMemorySink() *MemorySink { return results.NewMemorySink() }

// NewAggSink returns a Sink aggregating numeric fields on the fly.
func NewAggSink() *AggSink { return results.NewAggSink() }

// NewCSVShardSink returns a Sink writing one CSV shard file per key under
// dir.
func NewCSVShardSink(dir string) (*CSVShardSink, error) { return results.NewCSVShardSink(dir) }

// NewBinShardSink returns a Sink writing one binary row shard per key
// under dir. Tee it with a CSV sink to get both formats as siblings.
func NewBinShardSink(dir string) (*BinShardSink, error) { return results.NewBinShardSink(dir) }

// ReadRowsFile reads one shard file back into rows, dispatching on the
// extension: ".bin" is the binary row format, anything else CSV.
func ReadRowsFile(path string) ([]Row, error) { return results.ReadRowsFile(path) }

// NewResultsService opens a campaign rows directory (or a campaign
// output directory containing rows/) as a query service; its Handler
// serves the resultsd HTTP API documented in docs/resultsd-api.md.
func NewResultsService(dir string, opts ResultsServiceOptions) (*ResultsService, error) {
	return serve.New(dir, opts)
}

// NewTee returns a Sink fanning every row out to all the given sinks.
func NewTee(sinks ...Sink) Sink { return results.NewTee(sinks...) }

// EmitRow streams a row from inside a campaign job to the campaign's
// configured sink (a no-op when the campaign has none).
func EmitRow(ctx context.Context, key string, row Row) error {
	return campaign.Emit(ctx, key, row)
}

// Axis constructors for Grid.Axes. RankAxis, NetAxis, CacheAxis, CPUAxis
// and CPUClockAxis mutate the scenario's machine; MeshAxis and FluxAxis
// are app-level axes the harness maps onto its configs.
func RankAxis(procs ...int) Dimension       { return campaign.RankAxis(procs...) }
func NetAxis(nets ...NamedNet) Dimension    { return campaign.NetAxis(nets...) }
func CacheAxis(kbs ...int) Dimension        { return campaign.CacheAxis(kbs...) }
func CPUAxis(tunes ...CPUTune) Dimension    { return campaign.CPUAxis(tunes...) }
func CPUClockAxis(s ...float64) Dimension   { return campaign.CPUClockAxis(s...) }
func MeshAxis(meshes ...MeshSize) Dimension { return campaign.MeshAxis(meshes...) }
func FluxAxis(fluxes ...string) Dimension   { return campaign.FluxAxis(fluxes...) }

// SchedAxis and SchedModeAxis sweep the rank scheduler (serial,
// conservative parallel, optimistic parallel). The axis is seed-inert:
// scenarios differing only in scheduler share a derived seed, so a grid
// can verify at scale that the parallel schedulers reproduce serial
// results bit for bit.
func SchedAxis(choices ...SchedChoice) Dimension { return campaign.SchedAxis(choices...) }
func SchedModeAxis(modes ...SchedulerMode) Dimension {
	return campaign.SchedModeAxis(modes...)
}

// ParseSpecWindow parses a -specwindow style flag value into
// WorldConfig.SpecWindowMin/Max bounds for the optimistic scheduler:
// "min:max" adapts between the bounds, a single positive integer pins a
// fixed window, and "" or "0" keeps the default fixed 4096-event window.
func ParseSpecWindow(s string) (min, max int, err error) {
	return mpi.ParseSpecWindow(s)
}

// TrendByAxis builds a trend selector for any numeric user-defined grid
// dimension; TrendAxisNamed resolves a flag-style axis name.
func TrendByAxis(axis string) TrendAxis { return harness.TrendByAxis(axis) }
func TrendAxisNamed(name string) (TrendAxis, error) {
	return harness.TrendAxisNamed(name)
}

// BuildTrends fits model coefficients against the chosen swept dimension
// over streamed grid points, one report per measured kernel (the paper's
// Section 6 "coefficients parameterized by processor speed and a cache
// model").
func BuildTrends(points []GridPoint, axis TrendAxis) ([]*TrendReport, error) {
	return harness.BuildTrends(points, axis)
}

// WriteTrendCSV writes trend reports as one long-format CSV.
func WriteTrendCSV(w io.Writer, reports []*TrendReport) error {
	return harness.WriteTrendCSV(w, reports)
}

// WriteTrendReport prints the human-readable trend analysis.
func WriteTrendReport(w io.Writer, reports []*TrendReport) error {
	return harness.WriteTrendReport(w, reports)
}
