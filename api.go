package repro

import (
	"io"

	"repro/internal/assembly"
	"repro/internal/components"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
)

// Re-exported configuration and result types of the experiment harness.
type (
	// CaseStudyConfig configures an end-to-end run of the paper's
	// application (assembly + simulated machine).
	CaseStudyConfig = harness.CaseStudyConfig
	// CaseStudyResult carries the profiles, records, call trace, density
	// image and wiring diagram of one run.
	CaseStudyResult = harness.CaseStudyResult
	// SweepConfig drives the Figs. 4-8 kernel measurement campaign.
	SweepConfig = harness.SweepConfig
	// SweepResult holds the campaign's proxy-recorded samples.
	SweepResult = harness.SweepResult
	// ComponentModel is a fitted Eq. 1/Eq. 2 performance model.
	ComponentModel = harness.ComponentModel
	// Kernel selects one of the three measured components.
	Kernel = harness.Kernel
	// AppConfig assembles the component application.
	AppConfig = components.AppConfig
	// WorldConfig describes the simulated parallel machine.
	WorldConfig = mpi.WorldConfig
	// Model is a fitted performance model (polynomial or power law).
	Model = perfmodel.Model
	// Dual is the application's composite-model graph (Fig. 10).
	Dual = assembly.Dual
	// Optimizer selects among component implementations by predicted cost
	// under a Quality-of-Service floor.
	Optimizer = assembly.Optimizer
)

// Measured kernels.
const (
	KernelStates  = harness.KernelStates
	KernelGodunov = harness.KernelGodunov
	KernelEFM     = harness.KernelEFM
)

// DefaultCaseStudy returns the calibrated paper configuration (3 ranks,
// 3-level SAMR hierarchy, Godunov flux, monitored).
func DefaultCaseStudy() CaseStudyConfig { return harness.DefaultCaseStudy() }

// RunCaseStudy executes the assembled application and gathers per-rank
// measurements.
func RunCaseStudy(cfg CaseStudyConfig) (*CaseStudyResult, error) {
	return harness.RunCaseStudy(cfg)
}

// DefaultSweep returns the calibrated Figs. 4-8 sweep for a kernel.
func DefaultSweep(k Kernel) SweepConfig { return harness.DefaultSweep(k) }

// RunSweep measures a kernel through the full PMM stack over a size sweep.
func RunSweep(cfg SweepConfig) (*SweepResult, error) { return harness.RunSweep(cfg) }

// FitModels performs the paper's Section 5 regression analysis on a sweep.
func FitModels(s *SweepResult) (*ComponentModel, error) { return harness.FitModels(s) }

// WriteModelReport prints the paper-vs-measured Eq. 1/Eq. 2 comparison.
func WriteModelReport(w io.Writer, cm *ComponentModel) error {
	return harness.WriteModelReport(w, cm)
}

// BuildDual constructs the Fig. 10 composite-model graph from a case-study
// call trace and fitted models.
func BuildDual(res *CaseStudyResult, models map[Kernel]*ComponentModel) *Dual {
	return harness.BuildDual(res, models)
}

// FluxSlot builds the paper's GodunovFlux-vs-EFMFlux implementation choice
// for the optimizer.
func FluxSlot(vertex string, godunov, efm *ComponentModel) assembly.Slot {
	return harness.FluxSlot(vertex, godunov, efm)
}
