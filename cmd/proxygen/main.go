// Command proxygen generates CCA proxy-component source from a port
// specification — the automation the paper anticipates in Sections 4.2 and
// 6 ("it is not difficult to envision proxy creation being fully
// automated... we are currently investigating simple mark-up approaches
// identifying arguments/parameters which affect performance and need to be
// extracted and recorded").
//
// The specification is a JSON file marking up, per forwarded method, the
// performance-relevant parameters to extract:
//
//	{
//	  "package": "myproxies",
//	  "name": "StatesProxy",
//	  "portType": "StatesPort",
//	  "portInterface": "components.StatesPort",
//	  "providesName": "states",
//	  "imports": ["repro/internal/components", "repro/internal/euler"],
//	  "methods": [
//	    {
//	      "name": "Compute",
//	      "signature": "b *euler.Block, dir euler.Dir, qL, qR *euler.EdgeField",
//	      "args": "b, dir, qL, qR",
//	      "results": "",
//	      "params": [
//	        {"name": "Q", "expr": "float64(b.Cells())"},
//	        {"name": "mode", "expr": "float64(dir)"}
//	      ]
//	    }
//	  ]
//	}
//
// Usage: proxygen -spec spec.json [-o out.go]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	spec := flag.String("spec", "", "path to the proxy specification (JSON)")
	out := flag.String("o", "", "output file (default stdout)")
	example := flag.Bool("example", false, "print an example specification and exit")
	flag.Parse()

	if *example {
		fmt.Print(exampleSpec)
		return
	}
	if *spec == "" {
		fmt.Fprintln(os.Stderr, "proxygen: -spec is required (see -example)")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*spec)
	if err != nil {
		fatal(err)
	}
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		fatal(fmt.Errorf("proxygen: parsing %s: %w", *spec, err))
	}
	src, err := Generate(&s)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

const exampleSpec = `{
  "package": "myproxies",
  "name": "StatesProxy",
  "portType": "StatesPort",
  "portInterface": "components.StatesPort",
  "providesName": "states",
  "imports": ["repro/internal/components", "repro/internal/euler"],
  "methods": [
    {
      "name": "Compute",
      "signature": "b *euler.Block, dir euler.Dir, qL, qR *euler.EdgeField",
      "args": "b, dir, qL, qR",
      "results": "",
      "params": [
        {"name": "Q", "expr": "float64(b.Cells())"},
        {"name": "mode", "expr": "float64(dir)"}
      ]
    }
  ]
}
`
