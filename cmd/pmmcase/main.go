// Command pmmcase runs the paper's case study end to end on the simulated
// platform: the CCA component application (SAMR shock/interface simulation)
// with the PMM infrastructure interposed, printing the Fig. 3 FUNCTION
// SUMMARY and, optionally, the fitted Eq. 1/Eq. 2 performance models, the
// record dumps, and the cross-scenario trend report (-report) that fits
// model coefficients against cache size over a streamed grid.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/components"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/results/store"
	"repro/internal/results/store/lease"
)

func main() {
	var (
		procs    = flag.Int("procs", 3, "number of simulated ranks")
		steps    = flag.Int("steps", 0, "coarse time steps (0 = default)")
		baseNx   = flag.Int("nx", 0, "base grid x cells (0 = default)")
		baseNy   = flag.Int("ny", 0, "base grid y cells (0 = default)")
		flux     = flag.String("flux", "godunov", "flux implementation: godunov | efm")
		models   = flag.Bool("models", false, "run the kernel sweeps and print Eq. 1/2 fits")
		records  = flag.Bool("records", false, "dump the Mastermind records (CSV)")
		cacheSt  = flag.Bool("cachestudy", false, "refit the States model under 128kB/512kB/1MB caches and fit the cache-aware T(Q,DCM) model (paper Section 6 outlook)")
		report   = flag.Bool("report", false, "stream a machine-axis x flux grid through an aggregating sink and print the coefficient-vs-axis trend report")
		axis     = flag.String("axis", "cache_kb", "trend axis for -report: cache_kb | cpu_clock")
		seed     = flag.Int64("seed", 1, "simulation seed")
		workers  = flag.Int("workers", 0, "campaign workers for -models/-cachestudy (0 = all CPUs)")
		rankpar  = flag.Int("rankpar", 0, "run each simulated world's ranks concurrently on up to N goroutines (output is bit-identical to serial). 0 = serial, -1 = parallel with no cap")
		rankmode = flag.String("rankmode", "", "rank scheduler: serial | par (conservative) | opt (optimistic/Time Warp). Empty derives the mode from -rankpar (nonzero = par); -rankpar then sets the concurrency cap")
		specwin  = flag.String("specwindow", "", `optimistic speculation window: "min:max" adapts between the bounds, a single size pins a fixed window, 0 or empty keeps the fixed 4096-event default (only meaningful with -rankmode opt)`)
		cache    = flag.String("cache", "", "checkpoint store directory for the campaign subcommands (empty = no store)")
		distrib  = flag.Bool("distributed", false, "partition campaign jobs with other -distributed processes sharing the same -cache store via lease files (no coordinator)")
		owner    = flag.String("owner", "", "stable worker identity for -distributed lease and audit files (default: host-pid)")
		ttl      = flag.Duration("leasettl", 0, "lease heartbeat expiry for -distributed; a crashed worker's jobs are stolen after this (0 = 30s default)")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (load in chrome://tracing or Perfetto); output bytes are unchanged")
		metDump  = flag.String("metricsdump", "", "write the final metrics registry in text exposition format to this file")
	)
	flag.Parse()

	// Observation is write-only: everything printed below is byte-identical
	// with or without these flags. The observer must be live before any
	// world, store or lease manager is constructed.
	var observer *obs.Observer
	if *traceOut != "" || *metDump != "" {
		observer = obs.New(obs.Options{})
		obs.Enable(observer)
		defer obs.Disable()
	}

	// applySched maps -rankmode/-rankpar/-specwindow onto a world: the
	// parallel schedulers change wall-clock time only, never results.
	swMin, swMax, err := mpi.ParseSpecWindow(*specwin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	applySched := func(w *mpi.WorldConfig) {
		if *rankmode == "" {
			*w = w.WithRankParallelism(*rankpar).WithSpecWindow(swMin, swMax)
			return
		}
		mode, err := mpi.ParseSchedulerMode(*rankmode)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		*w = w.WithScheduler(mode, *rankpar).WithSpecWindow(swMin, swMax)
	}

	cfg := harness.DefaultCaseStudy()
	cfg.World.Procs = *procs
	cfg.World.Seed = *seed
	applySched(&cfg.World)
	if *steps > 0 {
		cfg.App.Driver.Steps = *steps
	}
	if *baseNx > 0 {
		cfg.App.Mesh.BaseNx = *baseNx
	}
	if *baseNy > 0 {
		cfg.App.Mesh.BaseNy = *baseNy
	}
	switch *flux {
	case "godunov":
		cfg.App.Flux = components.Godunov
	case "efm":
		cfg.App.Flux = components.EFM
	default:
		fmt.Fprintf(os.Stderr, "unknown -flux %q\n", *flux)
		os.Exit(2)
	}

	res, err := harness.RunCaseStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("case study: %d ranks, %d coarse steps, t=%.4f, flux=%s\n",
		*procs, res.StepsTaken, res.SimTime, cfg.App.Flux)
	for lev, st := range res.Stats {
		fmt.Printf("  level %d: %3d patches, %7d cells\n", lev, st.Patches, st.Cells)
	}
	fmt.Println()
	if err := res.WriteProfile(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *records {
		fmt.Println()
		for _, rec := range res.Records[0] {
			if err := rec.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	cc := campaign.Config{Workers: *workers}
	var mgr *lease.Manager
	switch {
	case *distrib && *cache == "":
		fmt.Fprintln(os.Stderr, "-distributed needs a shared checkpoint store; pass -cache <dir>")
		os.Exit(2)
	case *distrib:
		var err error
		cc, mgr, err = harness.DistributedConfig(cc, *cache, *owner, lease.Options{TTL: *ttl})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer mgr.Close()
	case *cache != "":
		st, err := store.Open(*cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cc.Store = st
	}

	if *cacheSt {
		fmt.Println()
		scfg := harness.DefaultSweep(harness.KernelStates)
		scfg.World.Procs = *procs
		scfg.World.Seed = *seed
		applySched(&scfg.World)
		scfg.Reps = 2
		// The refit runs and the cache-aware base sweep are independent
		// simulated machines: one campaign, parallel workers.
		sizes := []int{128, 512, 1024}
		jobs := make([]campaign.Job, 0, len(sizes)+1)
		for _, kb := range sizes {
			jobs = append(jobs, harness.CachePointJob(fmt.Sprintf("cache/%dkB", kb), scfg, kb))
		}
		jobs = append(jobs, harness.SweepJob("sweep/aware", scfg))
		res, err := campaign.Run(context.Background(), cc, jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pts := make([]harness.CachePoint, len(sizes))
		for i := range pts {
			pts[i] = res[i].Value.(harness.CachePoint)
		}
		if err := harness.WriteCacheStudy(os.Stdout, harness.KernelStates, pts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sw := res[len(sizes)].Value.(*harness.SweepResult)
		ml, r2Aware, r2Plain, err := harness.CacheAwareFit(sw)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("cache-aware model (512 kB): T = %s\n", ml)
		fmt.Printf("  R2 with DCM folded in: %.4f   (Q-only linear: %.4f)\n", r2Aware, r2Plain)
	}

	if *report {
		fmt.Println()
		// A reduced States/EFM sweep keeps the grid quick; the campaign
		// streams every scenario's rows into an aggregating sink, so no
		// per-scenario SweepResult survives its job. The -axis flag picks
		// the machine dimension the grid sweeps and the trend fits against.
		base := harness.DefaultSweep(harness.KernelStates)
		base.World.Procs = *procs
		base.World.Seed = *seed
		applySched(&base.World)
		base.Sizes = base.Sizes[:8]
		base.Reps = 2
		trendAxis, err := harness.TrendAxisNamed(*axis)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var machineAxis campaign.Dimension
		switch trendAxis.Name {
		case harness.TrendCacheKB.Name:
			machineAxis = campaign.CacheAxis(128, 256, 512, 1024)
		case harness.TrendCPUClock.Name:
			machineAxis = campaign.CPUClockAxis(0.5, 1, 2, 4)
		default:
			fmt.Fprintf(os.Stderr, "-axis %s: no built-in sweep here (supported: cache_kb, cpu_clock)\n", trendAxis.Name)
			os.Exit(2)
		}
		grid := campaign.Grid{
			Base:         base.World,
			Axes:         []campaign.Dimension{machineAxis, campaign.FluxAxis("states", "efm")},
			Replications: 2,
			BaseSeed:     *seed,
		}
		agg := results.NewAggSink()
		ccr := cc
		ccr.Sink = agg
		pts, err := harness.StreamSweepGrid(context.Background(), ccr, base, grid)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		reports, err := harness.BuildTrends(pts, trendAxis)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := harness.WriteTrendReport(os.Stdout, reports); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nstreamed aggregates over %d scenarios (wall_us per scenario):\n", len(pts))
		for _, key := range agg.Keys() {
			if st, ok := agg.Stat(key, "wall_us"); ok {
				fmt.Printf("  %-28s n=%4d  mean=%10.2f  min=%10.2f  max=%10.2f\n",
					key, st.N, st.Mean, st.Min, st.Max)
			}
		}
	}

	if *models {
		fmt.Println()
		kernels := []harness.Kernel{harness.KernelStates, harness.KernelGodunov, harness.KernelEFM}
		cfgs := make([]harness.SweepConfig, len(kernels))
		for i, k := range kernels {
			cfgs[i] = harness.DefaultSweep(k)
			cfgs[i].World.Procs = *procs
			cfgs[i].World.Seed = *seed
			applySched(&cfgs[i].World)
		}
		sweeps, err := harness.RunSweeps(context.Background(), cc, cfgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, sw := range sweeps {
			cm, err := harness.FitModels(sw)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := harness.WriteModelReport(os.Stdout, cm); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}

	if mgr != nil {
		// This process's share of the partitioned campaigns; every other
		// job was replayed from the shared store, so the report above is
		// byte-identical to a single-process run.
		fmt.Printf("\ndistributed: owner %s executed %d job(s)\n", mgr.Owner(), len(mgr.Executed()))
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = observer.Tracer().WriteTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *metDump != "" {
		if err := observer.Metrics().DumpFile(*metDump); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
