// Command benchlog maintains the repository's checked-in benchmark
// trajectory and gates regressions against it.
//
// Write mode appends a snapshot of the benchmark suite to a JSON log:
//
//	go run ./cmd/benchlog -out BENCH_0006.json
//
// It runs the suite (BenchmarkWorldRun, BenchmarkGridScenarios,
// BenchmarkLeaseClaim, BenchmarkCSVShardSink) through "go test -bench"
// with -benchtime=1x -count=3 -benchmem, normalizes each benchmark to the
// minimum ns/op and allocs/op across the repetitions (the minimum is the
// least noisy location statistic for a quiet machine), and appends one run
// — host fingerprint plus the normalized results — to the log file.
//
// Check mode re-runs the same suite and compares it against the newest
// checked-in BENCH_*.json:
//
//	go run ./cmd/benchlog -check
//
// A benchmark whose ns/op exceeds the baseline by more than -threshold
// (default 25%) is a regression and the command exits 1. Benchmarks that
// exist now but not in the baseline (a PR adding suite coverage) are
// reported as NEW and never gate — they enter the trajectory when the next
// run is appended. Two escapes are built in, both deliberate:
//
//   - Host mismatch: wall-clock baselines only mean something on the host
//     class that produced them. The check resolves its baseline to the
//     newest logged run from the current host class; when the log has
//     never seen this class, the comparison against the newest run of any
//     class is reported but the exit code stays 0. To arm the gate on a
//     new host class, append a run from that class to the log.
//   - BENCHLOG_ACCEPT_REGRESSION=1 in the environment downgrades a failing
//     check to a warning — the escape hatch for a PR that knowingly trades
//     benchmark time for something else. Use it in the PR that documents
//     the trade, then refresh the baseline.
//
// Arming the gate on CI: -ifnew makes write mode idempotent per host
// class — it runs the suite, then appends only when the log holds no run
// whose fingerprint matches this host. The CI workflow runs
//
//	go run ./cmd/benchlog -out BENCH_0006.json -ifnew
//
// on pushes to the main branch and commits the file when it changed, so
// the first push from a new runner class records its baseline and every
// later pull request on that class gets a binding -check instead of the
// host-mismatch escape.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// suite is the benchmark set the trajectory tracks: the scheduler
// benchmarks plus the hot paths of the campaign and results layers.
var suite = []struct{ pkg, bench string }{
	{"repro", "^BenchmarkWorldRun$"},
	{"repro/internal/campaign", "^BenchmarkGridScenarios$"},
	{"repro/internal/results", "^BenchmarkCSVShardSink$"},
	{"repro/internal/results/store/lease", "^BenchmarkLeaseClaim$"},
}

// Host is the fingerprint a baseline is only comparable within.
type Host struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

func (h Host) comparable(o Host) bool {
	return h.GOOS == o.GOOS && h.GOARCH == o.GOARCH && h.CPU == o.CPU && h.NumCPU == o.NumCPU
}

// Result is one benchmark's normalized measurement: the minimum across the
// run's -count repetitions.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Run is one appended snapshot of the suite.
type Run struct {
	Unix    int64    `json:"unix"`
	Host    Host     `json:"host"`
	Results []Result `json:"results"`
}

// File is the whole trajectory log.
type File struct {
	Schema int   `json:"schema"`
	Runs   []Run `json:"runs"`
}

func main() {
	var (
		out       = flag.String("out", "", "append a suite snapshot to this JSON log (write mode)")
		check     = flag.Bool("check", false, "re-run the suite and compare against the newest BENCH_*.json (check mode)")
		against   = flag.String("against", "", "baseline log for -check (default: lexically newest BENCH_*.json in the working directory)")
		threshold = flag.Float64("threshold", 0.25, "relative ns/op growth above which -check fails (0.25 = +25%)")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime per repetition")
		count     = flag.Int("count", 3, "go test -count repetitions; results keep the minimum")
		ifnew     = flag.Bool("ifnew", false, "with -out: append only when the log holds no run from this host class yet (arms the regression gate on a new host class exactly once)")
	)
	flag.Parse()
	if (*out == "") == !*check {
		fmt.Fprintln(os.Stderr, "benchlog: need exactly one of -out <file> or -check")
		os.Exit(2)
	}
	if *ifnew && *out == "" {
		fmt.Fprintln(os.Stderr, "benchlog: -ifnew needs -out")
		os.Exit(2)
	}

	host, results, err := runSuite(*benchtime, *count)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchlog:", err)
		os.Exit(2)
	}
	if *check {
		os.Exit(checkRun(*against, *threshold, host, results))
	}
	if *ifnew {
		known, err := hostKnown(*out, host)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchlog:", err)
			os.Exit(2)
		}
		if known {
			fmt.Printf("benchlog: %s already holds a run from this host class (%s/%s %q x%d); not appending\n",
				*out, host.GOOS, host.GOARCH, host.CPU, host.NumCPU)
			return
		}
	}
	//repolint:allow wallclock -- bench runs are fingerprinted with host class and wall-clock timestamp by design
	if err := appendRun(*out, Run{Unix: time.Now().Unix(), Host: host, Results: results}); err != nil {
		fmt.Fprintln(os.Stderr, "benchlog:", err)
		os.Exit(2)
	}
	fmt.Printf("benchlog: appended %d benchmark(s) to %s\n", len(results), *out)
}

// hostKnown reports whether the log already holds a run whose host class
// is comparable to h. The CPU model is only known after running the
// suite, so -ifnew decides after the (cheap, -benchtime 1x) run.
func hostKnown(path string, h Host) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return false, fmt.Errorf("%s: %v", path, err)
	}
	for _, run := range f.Runs {
		if run.Host.comparable(h) {
			return true, nil
		}
	}
	return false, nil
}

// benchLine matches one "go test -bench" result line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// runSuite executes every suite entry and returns the host fingerprint and
// the per-benchmark minima across repetitions.
func runSuite(benchtime string, count int) (Host, []Result, error) {
	host := Host{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(), GoVersion: runtime.Version()}
	min := map[string]*Result{}
	var order []string
	for _, s := range suite {
		fmt.Fprintf(os.Stderr, "benchlog: running %s in %s\n", s.bench, s.pkg)
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", s.bench,
			"-benchtime", benchtime, "-count", strconv.Itoa(count), "-benchmem", s.pkg)
		outBytes, err := cmd.Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return host, nil, fmt.Errorf("%s: %v\n%s\n%s", s.pkg, err, outBytes, ee.Stderr)
			}
			return host, nil, fmt.Errorf("%s: %v", s.pkg, err)
		}
		sc := bufio.NewScanner(strings.NewReader(string(outBytes)))
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
				host.CPU = strings.TrimSpace(cpu)
				continue
			}
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			name := m[1]
			ns, allocs, ok := parseMetrics(m[2])
			if !ok {
				continue
			}
			r := min[name]
			if r == nil {
				min[name] = &Result{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
				order = append(order, name)
				continue
			}
			if ns < r.NsPerOp {
				r.NsPerOp = ns
			}
			if allocs < r.AllocsPerOp {
				r.AllocsPerOp = allocs
			}
		}
	}
	if len(order) == 0 {
		return host, nil, fmt.Errorf("no benchmark results parsed")
	}
	results := make([]Result, len(order))
	for i, name := range order {
		results[i] = *min[name]
	}
	return host, results, nil
}

// parseMetrics pulls ns/op and allocs/op out of a bench line's metric
// pairs ("123.4 ns/op  16 B/op  2 allocs/op  5 custom-metric").
func parseMetrics(s string) (ns, allocs float64, ok bool) {
	f := strings.Fields(s)
	for i := 0; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return 0, 0, false
		}
		switch f[i+1] {
		case "ns/op":
			ns, ok = v, true
		case "allocs/op":
			allocs = v
		}
	}
	return ns, allocs, ok
}

// appendRun reads the log (if any), appends the run, and rewrites it.
func appendRun(path string, run Run) error {
	var f File
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f.Schema = 1
	f.Runs = append(f.Runs, run)
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// baseline resolves the log to check against and returns the newest run
// from the given host class — wall-clock numbers only bind within one
// class, so a run appended later from a different CI runner must not
// shadow this class's baseline. When the log has never seen this class it
// falls back to the newest run of any class (checkRun then reports the
// comparison without failing).
func baseline(against string, host Host) (string, *Run, error) {
	if against == "" {
		logs, err := filepath.Glob("BENCH_*.json")
		if err != nil || len(logs) == 0 {
			return "", nil, fmt.Errorf("no BENCH_*.json baseline found (and no -against given)")
		}
		sort.Strings(logs)
		against = logs[len(logs)-1]
	}
	data, err := os.ReadFile(against)
	if err != nil {
		return against, nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return against, nil, fmt.Errorf("%s: %v", against, err)
	}
	if len(f.Runs) == 0 {
		return against, nil, fmt.Errorf("%s holds no runs", against)
	}
	for i := len(f.Runs) - 1; i >= 0; i-- {
		if f.Runs[i].Host.comparable(host) {
			return against, &f.Runs[i], nil
		}
	}
	return against, &f.Runs[len(f.Runs)-1], nil
}

// checkRun compares the fresh results against the baseline and returns the
// process exit code.
func checkRun(against string, threshold float64, host Host, results []Result) int {
	path, base, err := baseline(against, host)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchlog:", err)
		return 2
	}
	cur := map[string]Result{}
	for _, r := range results {
		cur[r.Name] = r
	}
	baseNames := map[string]bool{}
	for _, b := range base.Results {
		baseNames[b.Name] = true
	}
	regressions := 0
	fmt.Printf("benchlog: checking %d benchmark(s) against %s (threshold +%.0f%%)\n",
		len(base.Results), path, threshold*100)
	for _, b := range base.Results {
		c, ok := cur[b.Name]
		if !ok {
			fmt.Printf("  MISSING  %-60s (in baseline, not produced now)\n", b.Name)
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		mark := "ok      "
		if ratio > 1+threshold {
			mark = "REGRESS "
			regressions++
		}
		fmt.Printf("  %s %-60s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
			mark, b.Name, b.NsPerOp, c.NsPerOp, (ratio-1)*100)
	}
	// Benchmarks this tree produces that the baseline has never seen (a PR
	// extending the suite) have nothing to gate against: warn, never fail —
	// they join the trajectory when the next run is appended.
	for _, r := range results {
		if !baseNames[r.Name] {
			fmt.Printf("  NEW      %-60s %12.0f ns/op  (not in baseline; not gated)\n", r.Name, r.NsPerOp)
		}
	}
	if regressions == 0 {
		fmt.Println("benchlog: no regressions")
		return 0
	}
	if !host.comparable(base.Host) {
		fmt.Printf("benchlog: %d regression(s), but the baseline host differs (%s/%s %q x%d vs %s/%s %q x%d) — wall-clock baselines only bind on their own host class; not failing\n",
			regressions, base.Host.GOOS, base.Host.GOARCH, base.Host.CPU, base.Host.NumCPU,
			host.GOOS, host.GOARCH, host.CPU, host.NumCPU)
		return 0
	}
	if os.Getenv("BENCHLOG_ACCEPT_REGRESSION") != "" {
		fmt.Printf("benchlog: %d regression(s) WAIVED by BENCHLOG_ACCEPT_REGRESSION — refresh the baseline in this PR\n", regressions)
		return 0
	}
	fmt.Printf("benchlog: %d regression(s) beyond +%.0f%% — investigate, or set BENCHLOG_ACCEPT_REGRESSION=1 and refresh the baseline if the trade is deliberate\n",
		regressions, threshold*100)
	return 1
}
