// Command obsreport aggregates a finished run's observability artifacts
// into throughput reports:
//
//   - With -store, it reads every owner's lease audit log from the shared
//     checkpoint store and prints the per-owner throughput table: jobs
//     executed, busy time, wall-clock span, jobs/s and each owner's share
//     of the total busy time. Over a distributed campaign this is the
//     load-balance summary — each job appears under exactly the owner
//     that executed it.
//
//   - With -trace, it parses a Chrome trace-event JSON exported by
//     cmd/figures -trace (or any internal/obs tracer), validates it
//     against the trace-event schema, and prints the per-track table:
//     spans, instants, busy time and observed window per (process, track)
//     — one row per campaign worker, MPI rank and lease owner.
//
//   - With -rows, it reads the speculation telemetry shards (spec_*.csv)
//     a campaign's CSV shard sink left under its rows directory and
//     prints the per-scenario speculation summary: speculated ops,
//     conflict and rollback rates, the adaptive window's observed range
//     and the speculative-collective hit/rollback counts — the Time Warp
//     scheduler's behavior across a whole grid, recovered without
//     re-running anything.
//
// -require makes validation strict for CI: a comma-separated list of
// process names (e.g. "campaign,lease,mpi") that must each contribute at
// least one track to the trace, so a refactor that silently drops a whole
// instrumentation layer fails the pipeline instead of shipping an empty
// track.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/results/store"
	"repro/internal/results/store/lease"
)

func main() {
	var (
		storeDir = flag.String("store", "", "checkpoint store directory; reads its lease audit logs into a per-owner throughput report")
		traceIn  = flag.String("trace", "", "Chrome trace-event JSON file; validated and summarized per track")
		rowsDir  = flag.String("rows", "", "campaign rows directory; reads its spec_*.csv shards into a per-scenario speculation summary")
		require  = flag.String("require", "", "comma-separated process names the trace must contain (CI gate; implies -trace)")
	)
	flag.Parse()
	if *storeDir == "" && *traceIn == "" && *rowsDir == "" {
		fatal(fmt.Errorf("nothing to report: pass -store, -trace and/or -rows"))
	}
	if *require != "" && *traceIn == "" {
		fatal(fmt.Errorf("-require needs -trace"))
	}

	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		entries, err := lease.ReadAuditEntries(st)
		if err != nil {
			fatal(err)
		}
		execs := make([]obs.OwnerExec, len(entries))
		for i, e := range entries {
			execs[i] = obs.OwnerExec{
				Owner:     e.Owner,
				Key:       e.Key,
				ElapsedUS: e.ElapsedUS,
				EndUnixNS: e.EndUnixNS,
			}
		}
		fmt.Printf("owner throughput (%s):\n", *storeDir)
		if err := obs.WriteOwnerReport(os.Stdout, execs); err != nil {
			fatal(err)
		}
	}

	if *traceIn != "" {
		data, err := os.ReadFile(*traceIn)
		if err != nil {
			fatal(err)
		}
		tf, err := obs.ParseTrace(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *traceIn, err))
		}
		if err := obs.ValidateTrace(tf); err != nil {
			fatal(fmt.Errorf("%s: %w", *traceIn, err))
		}
		if *require != "" {
			have := map[string]bool{}
			for _, p := range tf.Processes() {
				have[p] = true
			}
			var missing []string
			for _, want := range strings.Split(*require, ",") {
				want = strings.TrimSpace(want)
				if want != "" && !have[want] {
					missing = append(missing, want)
				}
			}
			if len(missing) > 0 {
				fatal(fmt.Errorf("%s: missing required process track(s): %s",
					*traceIn, strings.Join(missing, ", ")))
			}
		}
		if *storeDir != "" {
			fmt.Println()
		}
		fmt.Printf("trace tracks (%s):\n", *traceIn)
		if err := obs.WriteTrackReport(os.Stdout, tf); err != nil {
			fatal(err)
		}
	}

	if *rowsDir != "" {
		scens, err := obs.ReadSpecShards(*rowsDir)
		if err != nil {
			fatal(err)
		}
		if *storeDir != "" || *traceIn != "" {
			fmt.Println()
		}
		fmt.Printf("speculation by scenario (%s):\n", *rowsDir)
		if err := obs.WriteSpecReport(os.Stdout, scens); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
