// Command repolint runs the repository's determinism analyzers — the
// static counterpart of the golden byte-identity tests. It loads the
// named packages (default ./...), runs the six-analyzer suite from
// internal/lint, and prints one line per finding:
//
//	internal/foo/foo.go:12:9: [wallclock] time.Now reads wall clock ...
//
// Intentional sites are annotated in the source with
// `//repolint:allow <analyzer> -- reason`; suppressed findings do not
// fail the run but stay visible in -json output, so the allowlist is
// auditable. Exit status: 0 clean, 1 unsuppressed findings, 2 load or
// internal error.
//
// Usage:
//
//	go run ./cmd/repolint ./...
//	go run ./cmd/repolint -json ./... > repolint.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (suppressed ones included) on stdout")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	relativize(diags)
	failing := lint.Unsuppressed(diags)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range failing {
			fmt.Println(d)
		}
	}
	fmt.Fprintf(os.Stderr, "repolint: %d package(s), %d finding(s), %d allowed\n",
		len(pkgs), len(failing), len(diags)-len(failing))
	if len(failing) > 0 {
		os.Exit(1)
	}
}

// relativize rewrites absolute diagnostic paths relative to the working
// directory, matching the compiler's error format.
func relativize(diags []lint.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(wd, diags[i].Path); err == nil && len(rel) < len(diags[i].Path) {
			diags[i].Path = rel
		}
	}
}
