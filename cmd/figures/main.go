// Command figures regenerates the data behind every figure of the paper's
// evaluation (Section 5):
//
//	fig1  density snapshot of the shock/interface run        -> fig1.pgm
//	fig2  component assembly wiring diagram                  -> fig2.dot
//	fig3  FUNCTION SUMMARY (mean) profile                    -> fig3.txt
//	fig4  States sequential vs strided scatter               -> fig4.csv
//	fig5  strided/sequential ratio vs array size             -> fig5.csv
//	fig6  States mean/sigma vs Q with fits (Eq. 1/2)         -> fig6.csv fig6_model.txt
//	fig7  GodunovFlux mean/sigma vs Q with fits              -> fig7.csv fig7_model.txt
//	fig8  EFMFlux mean/sigma vs Q with fits                  -> fig8.csv fig8_model.txt
//	fig9  per-level ghost-update communication times         -> fig9.csv
//	fig10 composite-model dual graph + assembly optimization -> fig10.dot fig10.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/assembly"
	"repro/internal/harness"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 1..10 or all")
		outDir = flag.String("out", "figures", "output directory")
		procs  = flag.Int("procs", 3, "simulated ranks")
		seed   = flag.Int64("seed", 1, "simulation seed")
		reps   = flag.Int("reps", 4, "sweep repetitions per size and mode")
	)
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	g := &generator{outDir: *outDir, procs: *procs, seed: *seed, reps: *reps}

	want := func(n string) bool { return *fig == "all" || *fig == n }
	if want("1") || want("2") || want("3") || want("9") || want("10") {
		if err := g.runCaseStudy(); err != nil {
			fatal(err)
		}
	}
	steps := []struct {
		name string
		run  func() error
	}{
		{"1", g.fig1}, {"2", g.fig2}, {"3", g.fig3},
		{"4", g.fig45}, {"5", func() error { return nil }}, // fig5 written with fig4
		{"6", func() error { return g.figModel(harness.KernelStates, "fig6") }},
		{"7", func() error { return g.figModel(harness.KernelGodunov, "fig7") }},
		{"8", func() error { return g.figModel(harness.KernelEFM, "fig8") }},
		{"9", g.fig9}, {"10", g.fig10},
	}
	for _, s := range steps {
		if !want(s.name) {
			continue
		}
		if err := s.run(); err != nil {
			fatal(fmt.Errorf("fig%s: %w", s.name, err))
		}
		fmt.Printf("fig%s done\n", s.name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

type generator struct {
	outDir string
	procs  int
	seed   int64
	reps   int

	caseRes *harness.CaseStudyResult
	sweeps  map[harness.Kernel]*harness.SweepResult
	models  map[harness.Kernel]*harness.ComponentModel
}

func (g *generator) runCaseStudy() error {
	cfg := harness.DefaultCaseStudy()
	cfg.World.Procs = g.procs
	cfg.World.Seed = g.seed
	res, err := harness.RunCaseStudy(cfg)
	if err != nil {
		return err
	}
	g.caseRes = res
	return nil
}

func (g *generator) sweep(k harness.Kernel) (*harness.SweepResult, error) {
	if g.sweeps == nil {
		g.sweeps = map[harness.Kernel]*harness.SweepResult{}
	}
	if s, ok := g.sweeps[k]; ok {
		return s, nil
	}
	cfg := harness.DefaultSweep(k)
	cfg.World.Procs = g.procs
	cfg.World.Seed = g.seed
	cfg.Reps = g.reps
	s, err := harness.RunSweep(cfg)
	if err != nil {
		return nil, err
	}
	g.sweeps[k] = s
	return s, nil
}

func (g *generator) model(k harness.Kernel) (*harness.ComponentModel, error) {
	if g.models == nil {
		g.models = map[harness.Kernel]*harness.ComponentModel{}
	}
	if m, ok := g.models[k]; ok {
		return m, nil
	}
	s, err := g.sweep(k)
	if err != nil {
		return nil, err
	}
	m, err := harness.FitModels(s)
	if err != nil {
		return nil, err
	}
	g.models[k] = m
	return m, nil
}

func (g *generator) write(name string, fn func(f io.Writer) error) error {
	f, err := os.Create(filepath.Join(g.outDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

func (g *generator) fig1() error {
	return g.write("fig1.pgm", g.caseRes.WritePGM)
}

func (g *generator) fig2() error {
	return g.write("fig2.dot", func(f io.Writer) error {
		_, err := io.WriteString(f, g.caseRes.AssemblyDOT)
		return err
	})
}

func (g *generator) fig3() error {
	return g.write("fig3.txt", g.caseRes.WriteProfile)
}

func (g *generator) fig45() error {
	s, err := g.sweep(harness.KernelStates)
	if err != nil {
		return err
	}
	if err := g.write("fig4.csv", s.WriteScatterCSV); err != nil {
		return err
	}
	return g.write("fig5.csv", s.WriteRatiosCSV)
}

func (g *generator) figModel(k harness.Kernel, name string) error {
	m, err := g.model(k)
	if err != nil {
		return err
	}
	if err := g.write(name+".csv", func(f io.Writer) error {
		return harness.WriteMeanSigmaCSV(f, m)
	}); err != nil {
		return err
	}
	return g.write(name+"_model.txt", func(f io.Writer) error {
		return harness.WriteModelReport(f, m)
	})
}

func (g *generator) fig9() error {
	return g.write("fig9.csv", g.caseRes.WriteGhostCommCSV)
}

func (g *generator) fig10() error {
	god, err := g.model(harness.KernelGodunov)
	if err != nil {
		return err
	}
	efm, err := g.model(harness.KernelEFM)
	if err != nil {
		return err
	}
	if _, err := g.model(harness.KernelStates); err != nil {
		return err
	}
	dual := harness.BuildDual(g.caseRes, g.models)
	if err := g.write("fig10.dot", func(f io.Writer) error {
		return dual.WriteDOT(f, "application-dual")
	}); err != nil {
		return err
	}
	return g.write("fig10.txt", func(f io.Writer) error {
		var sb strings.Builder
		fmt.Fprintf(&sb, "composite model cost: %.0f us\n\n", dual.Cost())
		opt := &assembly.Optimizer{
			Dual:  dual,
			Slots: []assembly.Slot{harness.FluxSlot("g_proxy", god, efm)},
		}
		best, ranking, err := opt.Optimize()
		if err != nil {
			return err
		}
		fmt.Fprintf(&sb, "assembly optimization over flux implementations:\n")
		for _, r := range ranking {
			fmt.Fprintf(&sb, "  %-12s cost %12.0f us  (min QoS %.2f)\n",
				r.Choice["g_proxy"], r.Cost, r.MinQoS)
		}
		fmt.Fprintf(&sb, "performance-optimal: %s\n", best.Choice["g_proxy"])
		opt.MinQoS = 0.9
		bestQ, _, err := opt.Optimize()
		if err != nil {
			return err
		}
		fmt.Fprintf(&sb, "with QoS >= 0.9 (scientists' accuracy floor): %s\n\n", bestQ.Choice["g_proxy"])

		// Crossover study: the optimal flux as the production problem size
		// grows ("EFMFlux has better characteristics ... especially for
		// large arrays", paper Section 5).
		fmt.Fprintf(&sb, "optimal flux vs workload size (model-guided):\n")
		for _, q := range []float64{200, 1_000, 10_000, 100_000} {
			trial := harness.BuildDual(g.caseRes, g.models)
			for _, name := range []string{"g_proxy", "sc_proxy", "efm_proxy"} {
				if v := trial.Vertex(name); v != nil {
					nv := *v
					nv.Q = q
					trial.AddVertex(nv)
				}
			}
			o2 := &assembly.Optimizer{Dual: trial,
				Slots: []assembly.Slot{harness.FluxSlot("g_proxy", god, efm)}}
			b2, _, err := o2.Optimize()
			if err != nil {
				return err
			}
			fmt.Fprintf(&sb, "  Q=%7.0f -> %-12s (cost %12.0f us)\n", q, b2.Choice["g_proxy"], b2.Cost)
		}
		_, err = io.WriteString(f, sb.String())
		return err
	})
}
