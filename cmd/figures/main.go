// Command figures regenerates the data behind every figure of the paper's
// evaluation (Section 5):
//
//	fig1  density snapshot of the shock/interface run        -> fig1.pgm
//	fig2  component assembly wiring diagram                  -> fig2.dot
//	fig3  FUNCTION SUMMARY (mean) profile                    -> fig3.txt
//	fig4  States sequential vs strided scatter               -> fig4.csv
//	fig5  strided/sequential ratio vs array size             -> fig5.csv
//	fig6  States mean/sigma vs Q with fits (Eq. 1/2)         -> fig6.csv fig6_model.txt
//	fig7  GodunovFlux mean/sigma vs Q with fits              -> fig7.csv fig7_model.txt
//	fig8  EFMFlux mean/sigma vs Q with fits                  -> fig8.csv fig8_model.txt
//	fig9  per-level ghost-update communication times         -> fig9.csv
//	fig10 composite-model dual graph + assembly optimization -> fig10.dot fig10.txt
//
// The whole regeneration is submitted as one campaign: the case study, the
// three kernel sweeps and the model fits are independent simulated-machine
// jobs wired into a dependency graph and executed by a worker pool
// (-workers). Output files are byte-identical for a fixed seed regardless
// of worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/assembly"
	"repro/internal/campaign"
	"repro/internal/harness"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 1..10 or all")
		outDir  = flag.String("out", "figures", "output directory")
		procs   = flag.Int("procs", 3, "simulated ranks")
		seed    = flag.Int64("seed", 1, "simulation seed")
		reps    = flag.Int("reps", 4, "sweep repetitions per size and mode")
		workers = flag.Int("workers", 0, "campaign workers (0 = all CPUs)")
	)
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	g := &generator{outDir: *outDir, procs: *procs, seed: *seed, reps: *reps}

	want := func(n string) bool { return *fig == "all" || *fig == n }
	jobs := g.jobs(want)
	if len(jobs) == 0 {
		fatal(fmt.Errorf("nothing to do for -fig %s", *fig))
	}
	_, err := campaign.Run(context.Background(), campaign.Config{
		Workers: *workers,
		OnProgress: func(e campaign.Event) {
			if strings.HasPrefix(e.Key, "fig") && e.Err == nil {
				fmt.Printf("%s done\n", e.Key)
			}
		},
	}, jobs)
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

type generator struct {
	outDir string
	procs  int
	seed   int64
	reps   int
}

// jobs assembles the campaign graph for the wanted figures: measurement
// jobs (case study, sweeps), fit jobs hanging off the sweeps, and figure
// jobs hanging off whichever results they render.
func (g *generator) jobs(want func(string) bool) []campaign.Job {
	needCase := want("1") || want("2") || want("3") || want("9") || want("10")
	needModel := map[harness.Kernel]bool{
		harness.KernelStates:  want("6") || want("10"),
		harness.KernelGodunov: want("7") || want("10"),
		harness.KernelEFM:     want("8") || want("10"),
	}
	needSweep := map[harness.Kernel]bool{
		harness.KernelStates:  want("4") || want("5") || needModel[harness.KernelStates],
		harness.KernelGodunov: needModel[harness.KernelGodunov],
		harness.KernelEFM:     needModel[harness.KernelEFM],
	}
	sweepKey := func(k harness.Kernel) string { return "sweep/" + string(k) }
	modelKey := func(k harness.Kernel) string { return "model/" + string(k) }

	var jobs []campaign.Job
	if needCase {
		cfg := harness.DefaultCaseStudy()
		cfg.World.Procs = g.procs
		cfg.World.Seed = g.seed
		jobs = append(jobs, harness.CaseStudyJob("case", cfg))
	}
	for _, k := range []harness.Kernel{harness.KernelStates, harness.KernelGodunov, harness.KernelEFM} {
		if !needSweep[k] {
			continue
		}
		cfg := harness.DefaultSweep(k)
		cfg.World.Procs = g.procs
		cfg.World.Seed = g.seed
		cfg.Reps = g.reps
		jobs = append(jobs, harness.SweepJob(sweepKey(k), cfg))
		if needModel[k] {
			jobs = append(jobs, harness.ModelJob(modelKey(k), sweepKey(k)))
		}
	}

	caseOf := func(deps map[string]any) *harness.CaseStudyResult {
		return deps["case"].(*harness.CaseStudyResult)
	}
	figJob := func(name string, after []string, run func(deps map[string]any) error) campaign.Job {
		return campaign.Job{Key: name, After: after,
			Run: func(_ context.Context, deps map[string]any) (any, error) {
				return nil, run(deps)
			}}
	}
	add := func(n string, after []string, run func(deps map[string]any) error) {
		if want(n) {
			jobs = append(jobs, figJob("fig"+n, after, run))
		}
	}

	add("1", []string{"case"}, func(deps map[string]any) error {
		return g.write("fig1.pgm", caseOf(deps).WritePGM)
	})
	add("2", []string{"case"}, func(deps map[string]any) error {
		return g.write("fig2.dot", func(f io.Writer) error {
			_, err := io.WriteString(f, caseOf(deps).AssemblyDOT)
			return err
		})
	})
	add("3", []string{"case"}, func(deps map[string]any) error {
		return g.write("fig3.txt", caseOf(deps).WriteProfile)
	})
	add("4", []string{sweepKey(harness.KernelStates)}, func(deps map[string]any) error {
		s := deps[sweepKey(harness.KernelStates)].(*harness.SweepResult)
		return g.write("fig4.csv", s.WriteScatterCSV)
	})
	add("5", []string{sweepKey(harness.KernelStates)}, func(deps map[string]any) error {
		s := deps[sweepKey(harness.KernelStates)].(*harness.SweepResult)
		return g.write("fig5.csv", s.WriteRatiosCSV)
	})
	for _, fk := range []struct {
		n string
		k harness.Kernel
	}{
		{"6", harness.KernelStates}, {"7", harness.KernelGodunov}, {"8", harness.KernelEFM},
	} {
		n, k := fk.n, fk.k
		add(n, []string{modelKey(k)}, func(deps map[string]any) error {
			return g.figModel(deps[modelKey(k)].(*harness.ComponentModel), "fig"+n)
		})
	}
	add("9", []string{"case"}, func(deps map[string]any) error {
		return g.write("fig9.csv", caseOf(deps).WriteGhostCommCSV)
	})
	add("10", []string{"case", modelKey(harness.KernelStates), modelKey(harness.KernelGodunov), modelKey(harness.KernelEFM)},
		func(deps map[string]any) error {
			models := map[harness.Kernel]*harness.ComponentModel{}
			for _, k := range []harness.Kernel{harness.KernelStates, harness.KernelGodunov, harness.KernelEFM} {
				models[k] = deps[modelKey(k)].(*harness.ComponentModel)
			}
			return g.fig10(caseOf(deps), models)
		})
	return jobs
}

func (g *generator) write(name string, fn func(f io.Writer) error) error {
	f, err := os.Create(filepath.Join(g.outDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

func (g *generator) figModel(m *harness.ComponentModel, name string) error {
	if err := g.write(name+".csv", func(f io.Writer) error {
		return harness.WriteMeanSigmaCSV(f, m)
	}); err != nil {
		return err
	}
	return g.write(name+"_model.txt", func(f io.Writer) error {
		return harness.WriteModelReport(f, m)
	})
}

func (g *generator) fig10(caseRes *harness.CaseStudyResult, models map[harness.Kernel]*harness.ComponentModel) error {
	god := models[harness.KernelGodunov]
	efm := models[harness.KernelEFM]
	dual := harness.BuildDual(caseRes, models)
	if err := g.write("fig10.dot", func(f io.Writer) error {
		return dual.WriteDOT(f, "application-dual")
	}); err != nil {
		return err
	}
	return g.write("fig10.txt", func(f io.Writer) error {
		var sb strings.Builder
		fmt.Fprintf(&sb, "composite model cost: %.0f us\n\n", dual.Cost())
		opt := &assembly.Optimizer{
			Dual:  dual,
			Slots: []assembly.Slot{harness.FluxSlot("g_proxy", god, efm)},
		}
		best, ranking, err := opt.Optimize()
		if err != nil {
			return err
		}
		fmt.Fprintf(&sb, "assembly optimization over flux implementations:\n")
		for _, r := range ranking {
			fmt.Fprintf(&sb, "  %-12s cost %12.0f us  (min QoS %.2f)\n",
				r.Choice["g_proxy"], r.Cost, r.MinQoS)
		}
		fmt.Fprintf(&sb, "performance-optimal: %s\n", best.Choice["g_proxy"])
		opt.MinQoS = 0.9
		bestQ, _, err := opt.Optimize()
		if err != nil {
			return err
		}
		fmt.Fprintf(&sb, "with QoS >= 0.9 (scientists' accuracy floor): %s\n\n", bestQ.Choice["g_proxy"])

		// Crossover study: the optimal flux as the production problem size
		// grows ("EFMFlux has better characteristics ... especially for
		// large arrays", paper Section 5).
		fmt.Fprintf(&sb, "optimal flux vs workload size (model-guided):\n")
		for _, q := range []float64{200, 1_000, 10_000, 100_000} {
			trial := harness.BuildDual(caseRes, models)
			for _, name := range []string{"g_proxy", "sc_proxy", "efm_proxy"} {
				if v := trial.Vertex(name); v != nil {
					nv := *v
					nv.Q = q
					trial.AddVertex(nv)
				}
			}
			o2 := &assembly.Optimizer{Dual: trial,
				Slots: []assembly.Slot{harness.FluxSlot("g_proxy", god, efm)}}
			b2, _, err := o2.Optimize()
			if err != nil {
				return err
			}
			fmt.Fprintf(&sb, "  Q=%7.0f -> %-12s (cost %12.0f us)\n", q, b2.Choice["g_proxy"], b2.Cost)
		}
		_, err = io.WriteString(f, sb.String())
		return err
	})
}
