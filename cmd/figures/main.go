// Command figures regenerates the data behind every figure of the paper's
// evaluation (Section 5):
//
//	fig1  density snapshot of the shock/interface run        -> fig1.pgm
//	fig2  component assembly wiring diagram                  -> fig2.dot
//	fig3  FUNCTION SUMMARY (mean) profile                    -> fig3.txt
//	fig4  States sequential vs strided scatter               -> fig4.csv
//	fig5  strided/sequential ratio vs array size             -> fig5.csv
//	fig6  States mean/sigma vs Q with fits (Eq. 1/2)         -> fig6.csv fig6_model.txt
//	fig7  GodunovFlux mean/sigma vs Q with fits              -> fig7.csv fig7_model.txt
//	fig8  EFMFlux mean/sigma vs Q with fits                  -> fig8.csv fig8_model.txt
//	fig9  per-level ghost-update communication times         -> fig9.csv
//	fig10 composite-model dual graph + assembly optimization -> fig10.dot fig10.txt
//	trend coefficient-vs-cache-size grid study (Section 6)   -> trend.csv trend.txt
//
// The whole regeneration is submitted as one campaign: the case study, the
// kernel sweeps, the cache-size grid scenarios and the model fits are
// independent simulated-machine jobs wired into a dependency graph and
// executed by a worker pool (-workers). Output files are byte-identical
// for a fixed seed regardless of worker count.
//
// Two streaming facilities ride on the campaign: every measurement job
// emits its telemetry rows into a CSV-shard sink under <out>/rows/, and
// every job checkpoints its payload into a content-addressed store
// (-cache, default <out>/.cache), so an interrupted regeneration resumed
// with the same flags re-runs zero completed jobs and still produces
// byte-identical output.
//
// With -distributed, several such processes pointed at one shared -cache
// directory (typically over a network filesystem) partition the job set
// among themselves with no coordinator: each job is claimed through a
// lease file, executed by exactly one process, and replayed from the
// store by the rest, so every process still renders the complete,
// byte-identical output set into its own -out directory. Give each
// process a distinct stable -owner id; a process that dies mid-run stops
// heartbeating and its jobs are stolen by the survivors after -leasettl.
package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/assembly"
	"repro/internal/campaign"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/results/store"
	"repro/internal/results/store/lease"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 1..10, trend, or all")
		outDir   = flag.String("out", "figures", "output directory")
		procs    = flag.Int("procs", 3, "simulated ranks")
		seed     = flag.Int64("seed", 1, "simulation seed")
		reps     = flag.Int("reps", 4, "sweep repetitions per size and mode")
		workers  = flag.Int("workers", 0, "campaign workers (0 = all CPUs)")
		cache    = flag.String("cache", "auto", `checkpoint store directory ("auto" = <out>/.cache, "off" disables)`)
		caches   = flag.String("trendcaches", "128,256,512,1024", "comma-separated cache sizes (kB) for -fig trend -axis cache_kb")
		clocks   = flag.String("trendclocks", "0.5,1,2,4", "comma-separated CPU clock scales for -fig trend -axis cpu_clock")
		axis     = flag.String("axis", "cache_kb", "trend grid axis for -fig trend: cache_kb | cpu_clock")
		trReps   = flag.Int("trendreps", 2, "seed replications per trend grid point")
		rankpar  = flag.Int("rankpar", 0, "run each simulated world's ranks concurrently on up to N goroutines (output is bit-identical to serial). 0 = serial scheduler, -1 = parallel with no cap. Non-default values checkpoint separately")
		rankmode = flag.String("rankmode", "", "rank scheduler: serial | par (conservative) | opt (optimistic/Time Warp). Empty derives the mode from -rankpar (nonzero = par); -rankpar then sets the concurrency cap")
		specwin  = flag.String("specwindow", "", `optimistic speculation window: "min:max" adapts between the bounds, a single size pins a fixed window, 0 or empty keeps the fixed 4096-event default (only meaningful with -rankmode opt)`)
		distrib  = flag.Bool("distributed", false, "partition the job set with other -distributed processes sharing the same -cache store via lease files (no coordinator); requires a store")
		owner    = flag.String("owner", "", "stable worker identity for -distributed lease and audit files (default: host-pid)")
		ttl      = flag.Duration("leasettl", 0, "lease heartbeat expiry for -distributed; a crashed worker's jobs are stolen after this (0 = 30s default)")
		rowfmt   = flag.String("rowformat", "csv", "row shard format under <out>/rows: csv | bin | both (bin is the compact binary format resultsd prefers)")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (load in chrome://tracing or Perfetto)")
		metrics  = flag.String("metrics", "", "serve live /metrics and /trace on this HTTP address while the run executes (e.g. localhost:9090)")
		metDump  = flag.String("metricsdump", "", "write the final metrics registry in text exposition format to this file")
	)
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	trendCaches, err := parseInts(*caches)
	if err != nil {
		fatal(fmt.Errorf("-trendcaches: %w", err))
	}
	trendClocks, err := parseFloats(*clocks)
	if err != nil {
		fatal(fmt.Errorf("-trendclocks: %w", err))
	}
	sched := mpi.Serial
	if *rankmode != "" {
		sched, err = mpi.ParseSchedulerMode(*rankmode)
		if err != nil {
			fatal(err)
		}
	} else if *rankpar != 0 {
		sched = mpi.ConservativeParallel
	}
	swMin, swMax, err := mpi.ParseSpecWindow(*specwin)
	if err != nil {
		fatal(err)
	}
	g := &generator{
		outDir: *outDir, procs: *procs, seed: *seed, reps: *reps,
		sched: sched, rankpar: *rankpar, specMin: swMin, specMax: swMax,
		trendAxis: *axis, trendCaches: trendCaches, trendClocks: trendClocks,
		trendReps: *trReps,
	}

	// Observability must be enabled before the store, leases and worlds are
	// opened: those layers capture their instruments at construction time.
	// It is strictly write-only — enabling it changes no rendered byte.
	var observer *obs.Observer
	if *traceOut != "" || *metrics != "" || *metDump != "" {
		observer = obs.New(obs.Options{})
		obs.Enable(observer)
		defer obs.Disable()
	}
	var msrv *obs.MetricsServer
	if *metrics != "" {
		var err error
		if msrv, err = observer.Serve(*metrics); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics: serving on http://%s/metrics\n", msrv.Addr())
	}

	cfg := campaign.Config{
		Workers: *workers,
		OnProgress: func(e campaign.Event) {
			if (strings.HasPrefix(e.Key, "fig") || e.Key == "trend") && e.Err == nil {
				note := ""
				if e.Cached {
					note = " (from checkpoint)"
				}
				fmt.Printf("%s done%s\n", e.Key, note)
			}
		},
	}
	var mgr *lease.Manager
	if *distrib && (*cache == "auto" || *cache == "off") {
		// The default per-out-directory store would give every process a
		// private store: each would run the whole grid and no audit would
		// notice. The shared directory must be named explicitly.
		fatal(fmt.Errorf("-distributed needs one store shared by every process; pass the same explicit -cache <dir> to all of them"))
	}
	if *cache == "auto" {
		*cache = filepath.Join(*outDir, ".cache")
	}
	switch {
	case *cache == "off":
	case *distrib:
		// Distributed mode: the store is shared with the other processes
		// and every checkpointable job is arbitrated through a lease.
		var err error
		cfg, mgr, err = harness.DistributedConfig(cfg, *cache, *owner, lease.Options{TTL: *ttl})
		if err != nil {
			fatal(err)
		}
	default:
		st, err := store.Open(*cache)
		if err != nil {
			fatal(err)
		}
		cfg.Store = st
	}
	// The rows directory reflects exactly this invocation: clearing it
	// first keeps shards from a previous run's configuration (other cache
	// sizes, other figures) from mixing with fresh telemetry.
	rowsDir := filepath.Join(*outDir, "rows")
	if err := os.RemoveAll(rowsDir); err != nil {
		fatal(err)
	}
	sink, err := newRowSink(rowsDir, *rowfmt)
	if err != nil {
		fatal(err)
	}
	cfg.Sink = sink

	want := func(n string) bool { return *fig == "all" || *fig == n }
	jobs, err := g.jobs(want)
	if err != nil {
		fatal(err)
	}
	if len(jobs) == 0 {
		fatal(fmt.Errorf("nothing to do for -fig %s", *fig))
	}
	_, err = campaign.Run(context.Background(), cfg, jobs)
	if cerr := sink.Close(); err == nil {
		err = cerr
	}
	if mgr != nil {
		// This process's share of the partition; the union across all
		// owners' audit logs proves every job executed exactly once.
		note := ""
		if n := mgr.Lost(); n > 0 {
			note = fmt.Sprintf(" (%d lease(s) lost to stealers)", n)
		}
		fmt.Printf("distributed: owner %s executed %d of %d job(s)%s\n",
			mgr.Owner(), len(mgr.Executed()), len(jobs), note)
		if cerr := mgr.Close(); err == nil {
			err = cerr
		}
	}
	// Observability outputs are flushed even when the run failed: a trace
	// of a broken campaign is exactly what the post-mortem wants.
	if *traceOut != "" {
		if werr := writeTrace(observer, *traceOut); err == nil {
			err = werr
		}
	}
	if *metDump != "" {
		if werr := observer.Metrics().DumpFile(*metDump); err == nil {
			err = werr
		}
	}
	if msrv != nil {
		if cerr := msrv.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fatal(err)
	}
}

// writeTrace exports the observer's tracer as Chrome trace-event JSON.
func writeTrace(o *obs.Observer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Tracer().WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// newRowSink builds the rows-directory sink for -rowformat: CSV shards,
// binary shards, or both as siblings (same stems, different extensions —
// the layout resultsd and obsreport read either side of).
func newRowSink(dir, format string) (results.Sink, error) {
	switch format {
	case "csv":
		return results.NewCSVShardSink(dir)
	case "bin":
		return results.NewBinShardSink(dir)
	case "both":
		csvSink, err := results.NewCSVShardSink(dir)
		if err != nil {
			return nil, err
		}
		binSink, err := results.NewBinShardSink(dir)
		if err != nil {
			return nil, err
		}
		return results.NewTee(csvSink, binSink), nil
	}
	return nil, fmt.Errorf("-rowformat %q: want csv, bin or both", format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// parseInts parses a comma-separated int list.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloats parses a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

type generator struct {
	outDir  string
	procs   int
	seed    int64
	reps    int
	sched   mpi.SchedulerMode
	rankpar int
	specMin int
	specMax int

	trendAxis   string
	trendCaches []int
	trendClocks []float64
	trendReps   int
}

// applySched maps the -rankmode/-rankpar/-specwindow flags onto a world
// config.
func (g *generator) applySched(w *mpi.WorldConfig) {
	*w = w.WithScheduler(g.sched, g.rankpar).WithSpecWindow(g.specMin, g.specMax)
}

// figVersion salts figure-job checkpoint hashes; bump when rendering
// changes so stale store entries stop matching.
const figVersion = "figures-v1"

// figFile is one rendered output file of a figure job.
type figFile struct {
	Name string
	Data []byte
}

// jobs assembles the campaign graph for the wanted figures: measurement
// jobs (case study, sweeps, trend grid scenarios), fit jobs hanging off
// the sweeps, and figure jobs hanging off whichever results they render.
func (g *generator) jobs(want func(string) bool) ([]campaign.Job, error) {
	needCase := want("1") || want("2") || want("3") || want("9") || want("10")
	needModel := map[harness.Kernel]bool{
		harness.KernelStates:  want("6") || want("10"),
		harness.KernelGodunov: want("7") || want("10"),
		harness.KernelEFM:     want("8") || want("10"),
	}
	needSweep := map[harness.Kernel]bool{
		harness.KernelStates:  want("4") || want("5") || needModel[harness.KernelStates],
		harness.KernelGodunov: needModel[harness.KernelGodunov],
		harness.KernelEFM:     needModel[harness.KernelEFM],
	}
	sweepKey := func(k harness.Kernel) string { return "sweep/" + string(k) }
	modelKey := func(k harness.Kernel) string { return "model/" + string(k) }

	var jobs []campaign.Job
	if needCase {
		cfg := harness.DefaultCaseStudy()
		cfg.World.Procs = g.procs
		cfg.World.Seed = g.seed
		g.applySched(&cfg.World)
		jobs = append(jobs, harness.CaseStudyJob("case", cfg))
	}
	for _, k := range []harness.Kernel{harness.KernelStates, harness.KernelGodunov, harness.KernelEFM} {
		if !needSweep[k] {
			continue
		}
		cfg := g.sweepConfig(k)
		jobs = append(jobs, harness.SweepJob(sweepKey(k), cfg))
		if needModel[k] {
			jobs = append(jobs, harness.ModelJob(modelKey(k), sweepKey(k), cfg))
		}
	}

	caseOf := func(deps map[string]any) *harness.CaseStudyResult {
		return deps["case"].(*harness.CaseStudyResult)
	}
	add := func(n string, after []string, render func(deps map[string]any, out *[]figFile) error) {
		if want(n) {
			jobs = append(jobs, g.figJob("fig"+n, after, render))
		}
	}

	add("1", []string{"case"}, func(deps map[string]any, out *[]figFile) error {
		return render(out, "fig1.pgm", caseOf(deps).WritePGM)
	})
	add("2", []string{"case"}, func(deps map[string]any, out *[]figFile) error {
		return render(out, "fig2.dot", func(f io.Writer) error {
			_, err := io.WriteString(f, caseOf(deps).AssemblyDOT)
			return err
		})
	})
	add("3", []string{"case"}, func(deps map[string]any, out *[]figFile) error {
		return render(out, "fig3.txt", caseOf(deps).WriteProfile)
	})
	add("4", []string{sweepKey(harness.KernelStates)}, func(deps map[string]any, out *[]figFile) error {
		s := deps[sweepKey(harness.KernelStates)].(*harness.SweepResult)
		return render(out, "fig4.csv", s.WriteScatterCSV)
	})
	add("5", []string{sweepKey(harness.KernelStates)}, func(deps map[string]any, out *[]figFile) error {
		s := deps[sweepKey(harness.KernelStates)].(*harness.SweepResult)
		return render(out, "fig5.csv", s.WriteRatiosCSV)
	})
	for _, fk := range []struct {
		n string
		k harness.Kernel
	}{
		{"6", harness.KernelStates}, {"7", harness.KernelGodunov}, {"8", harness.KernelEFM},
	} {
		n, k := fk.n, fk.k
		add(n, []string{modelKey(k)}, func(deps map[string]any, out *[]figFile) error {
			return g.figModel(deps[modelKey(k)].(*harness.ComponentModel), "fig"+n, out)
		})
	}
	add("9", []string{"case"}, func(deps map[string]any, out *[]figFile) error {
		return render(out, "fig9.csv", caseOf(deps).WriteGhostCommCSV)
	})
	add("10", []string{"case", modelKey(harness.KernelStates), modelKey(harness.KernelGodunov), modelKey(harness.KernelEFM)},
		func(deps map[string]any, out *[]figFile) error {
			models := map[harness.Kernel]*harness.ComponentModel{}
			for _, k := range []harness.Kernel{harness.KernelStates, harness.KernelGodunov, harness.KernelEFM} {
				models[k] = deps[modelKey(k)].(*harness.ComponentModel)
			}
			return g.fig10(caseOf(deps), models, out)
		})

	if want("trend") {
		tj, err := g.trendJobs()
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, tj...)
	}
	return jobs, nil
}

// sweepConfig builds the calibrated sweep for one kernel.
func (g *generator) sweepConfig(k harness.Kernel) harness.SweepConfig {
	cfg := harness.DefaultSweep(k)
	cfg.World.Procs = g.procs
	cfg.World.Seed = g.seed
	g.applySched(&cfg.World)
	cfg.Reps = g.reps
	return cfg
}

// trendGrid builds the trend study's scenario grid and axis selector for
// the -axis flag: the cache-size axis (the original Section 6 study) or
// the CPU clock axis (the "parameterized by processor speed" half).
func (g *generator) trendGrid(base harness.SweepConfig) (campaign.Grid, harness.TrendAxis, error) {
	axis, err := harness.TrendAxisNamed(g.trendAxis)
	if err != nil {
		return campaign.Grid{}, axis, err
	}
	grid := campaign.Grid{
		Base:         base.World,
		Replications: g.trendReps,
		BaseSeed:     g.seed,
	}
	switch axis.Name {
	case harness.TrendCacheKB.Name:
		grid.Axes = []campaign.Dimension{campaign.CacheAxis(g.trendCaches...)}
	case harness.TrendCPUClock.Name:
		grid.Axes = []campaign.Dimension{campaign.CPUClockAxis(g.trendClocks...)}
	default:
		return grid, axis, fmt.Errorf("-axis %s: no sweep flags for this axis here (supported: cache_kb, cpu_clock)", axis.Name)
	}
	return grid, axis, nil
}

// trendJobs builds the Section 6 grid study: one streaming scenario job
// per (axis value, replication) — each emits its rows into the shard sink
// and keeps only the fitted model — plus the trend job that consumes every
// grid point and renders the coefficient-vs-axis report.
func (g *generator) trendJobs() ([]campaign.Job, error) {
	base := g.sweepConfig(harness.KernelStates)
	grid, axis, err := g.trendGrid(base)
	if err != nil {
		return nil, err
	}
	jobs, err := harness.StreamJobs(base, grid)
	if err != nil {
		return nil, err
	}
	after := make([]string, len(jobs))
	for i, j := range jobs {
		after[i] = j.Key
	}
	trend := g.figJob("trend", after, func(deps map[string]any, out *[]figFile) error {
		points := make([]harness.GridPoint, len(after))
		for i, key := range after {
			points[i] = deps[key].(harness.GridPoint)
		}
		reports, err := harness.BuildTrends(points, axis)
		if err != nil {
			return err
		}
		if err := render(out, "trend.csv", func(w io.Writer) error {
			return harness.WriteTrendCSV(w, reports)
		}); err != nil {
			return err
		}
		return render(out, "trend.txt", func(w io.Writer) error {
			return harness.WriteTrendReport(w, reports)
		})
	})
	return append(jobs, trend), nil
}

// render runs a writer into a buffer and records the named output file.
func render(out *[]figFile, name string, fn func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := fn(&buf); err != nil {
		return err
	}
	*out = append(*out, figFile{Name: name, Data: buf.Bytes()})
	return nil
}

// figJob wraps a figure renderer as a checkpointable campaign job: Run
// renders the output files, writes them and returns them as the job's
// payload; a checkpoint hit rewrites the same bytes without re-rendering.
func (g *generator) figJob(key string, after []string, renderFn func(deps map[string]any, out *[]figFile) error) campaign.Job {
	parts := []any{figVersion, key, g.procs, g.seed, g.reps}
	if key == "trend" {
		// Only the trend job depends on the grid flags, and only on the
		// active axis's value list: folding the rest into the hash would
		// needlessly invalidate checkpoints when an unrelated flag moves.
		// The default cache axis keeps its pre--axis-flag hash so existing
		// stores stay warm.
		if g.trendAxis != "" && g.trendAxis != "cache_kb" {
			parts = append(parts, g.trendAxis, g.trendClocks, g.trendReps)
		} else {
			parts = append(parts, g.trendCaches, g.trendReps)
		}
	}
	hash := store.Hash(parts...)
	return campaign.Job{
		Key:   key,
		After: after,
		Hash:  hash,
		Encode: func(v any) ([]byte, error) {
			var buf bytes.Buffer
			err := gob.NewEncoder(&buf).Encode(v.([]figFile))
			return buf.Bytes(), err
		},
		Decode: func(_ context.Context, data []byte) (any, error) {
			var files []figFile
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&files); err != nil {
				return nil, err
			}
			return files, g.writeFiles(files)
		},
		Run: func(_ context.Context, deps map[string]any) (any, error) {
			var files []figFile
			if err := renderFn(deps, &files); err != nil {
				return nil, err
			}
			return files, g.writeFiles(files)
		},
	}
}

// writeFiles persists a figure job's rendered outputs.
func (g *generator) writeFiles(files []figFile) error {
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(g.outDir, f.Name), f.Data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func (g *generator) figModel(m *harness.ComponentModel, name string, out *[]figFile) error {
	if err := render(out, name+".csv", func(f io.Writer) error {
		return harness.WriteMeanSigmaCSV(f, m)
	}); err != nil {
		return err
	}
	return render(out, name+"_model.txt", func(f io.Writer) error {
		return harness.WriteModelReport(f, m)
	})
}

func (g *generator) fig10(caseRes *harness.CaseStudyResult, models map[harness.Kernel]*harness.ComponentModel, out *[]figFile) error {
	god := models[harness.KernelGodunov]
	efm := models[harness.KernelEFM]
	dual := harness.BuildDual(caseRes, models)
	if err := render(out, "fig10.dot", func(f io.Writer) error {
		return dual.WriteDOT(f, "application-dual")
	}); err != nil {
		return err
	}
	return render(out, "fig10.txt", func(f io.Writer) error {
		var sb strings.Builder
		fmt.Fprintf(&sb, "composite model cost: %.0f us\n\n", dual.Cost())
		opt := &assembly.Optimizer{
			Dual:  dual,
			Slots: []assembly.Slot{harness.FluxSlot("g_proxy", god, efm)},
		}
		best, ranking, err := opt.Optimize()
		if err != nil {
			return err
		}
		fmt.Fprintf(&sb, "assembly optimization over flux implementations:\n")
		for _, r := range ranking {
			fmt.Fprintf(&sb, "  %-12s cost %12.0f us  (min QoS %.2f)\n",
				r.Choice["g_proxy"], r.Cost, r.MinQoS)
		}
		fmt.Fprintf(&sb, "performance-optimal: %s\n", best.Choice["g_proxy"])
		opt.MinQoS = 0.9
		bestQ, _, err := opt.Optimize()
		if err != nil {
			return err
		}
		fmt.Fprintf(&sb, "with QoS >= 0.9 (scientists' accuracy floor): %s\n\n", bestQ.Choice["g_proxy"])

		// Crossover study: the optimal flux as the production problem size
		// grows ("EFMFlux has better characteristics ... especially for
		// large arrays", paper Section 5).
		fmt.Fprintf(&sb, "optimal flux vs workload size (model-guided):\n")
		for _, q := range []float64{200, 1_000, 10_000, 100_000} {
			trial := harness.BuildDual(caseRes, models)
			for _, name := range []string{"g_proxy", "sc_proxy", "efm_proxy"} {
				if v := trial.Vertex(name); v != nil {
					nv := *v
					nv.Q = q
					trial.AddVertex(nv)
				}
			}
			o2 := &assembly.Optimizer{Dual: trial,
				Slots: []assembly.Slot{harness.FluxSlot("g_proxy", god, efm)}}
			b2, _, err := o2.Optimize()
			if err != nil {
				return err
			}
			fmt.Fprintf(&sb, "  Q=%7.0f -> %-12s (cost %12.0f us)\n", q, b2.Choice["g_proxy"], b2.Cost)
		}
		_, err = io.WriteString(f, sb.String())
		return err
	})
}
