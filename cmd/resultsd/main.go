// Command resultsd serves a finished campaign's results as a query
// service: point it at a rows directory (or a campaign output directory
// containing one) and it answers performance-model queries over HTTP
// without re-running a single simulation.
//
//	resultsd -dir campaign-out [-addr 127.0.0.1:9190] [-cache 256]
//
// Endpoints (all GET, JSON unless noted):
//
//	/          service summary: scenario count, axes, backends, endpoints
//	/healthz   liveness: {"ok": true, "scenarios": N}
//	/metrics   obs registry text exposition (cache hits/misses, latencies)
//	/scenarios catalog listing, metadata only — no shard is decoded
//	/scenario  full detail for matching scenarios: fitted coefficients per
//	           backend (selectors: name, sched, tag, or any axis value)
//	/predict   evaluate one measure at a point: scenario, measure, q,
//	           optional model (fitted|queue), lambda, dcm
//	/trend     one coefficient-vs-axis curve per fitted parameter across
//	           the scenarios matching the query
//
// The full request/response contract, the error-code table and a curl
// walkthrough live in docs/resultsd-api.md; the binary row format the
// service prefers when present is documented in the repository doc.go
// ("Results service").
//
// With -addr 127.0.0.1:0 the kernel picks the port; the chosen address
// is printed as "resultsd: listening on http://..." so scripts (and the
// CI serve job) can scrape it.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/obs"
	"repro/internal/results/serve"
)

func main() {
	var (
		dir      = flag.String("dir", "", "campaign rows directory (or a campaign output directory containing rows/)")
		addr     = flag.String("addr", "127.0.0.1:9190", "listen address; port 0 picks a free port")
		cacheCap = flag.Int("cache", serve.DefaultCacheCap, "decoded scenarios kept resident in the read-through cache")
	)
	flag.Parse()
	if *dir == "" {
		fatal(fmt.Errorf("resultsd: -dir required (a campaign rows directory)"))
	}

	// The service records spans and cache/query counters into this
	// observer; /metrics exposes the registry.
	observer := obs.New(obs.Options{})
	obs.Enable(observer)

	svc, err := serve.New(*dir, serve.Options{CacheCap: *cacheCap, Obs: observer})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("resultsd: %d scenarios from %s\n", len(svc.Catalog().Scenarios()), svc.Catalog().Dir())
	fmt.Printf("resultsd: listening on http://%s\n", ln.Addr())
	if err := http.Serve(ln, svc.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
