// Assemblyopt demonstrates the paper's end goal (Section 6 / Fig. 10):
// measure the components, fit their performance models, build the
// application's dual graph from the recorded call trace, and let the
// composite model choose between the GodunovFlux and EFMFlux
// implementations — with and without the scientists' accuracy (QoS) floor.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/assembly"
)

func main() {
	// 1. Run the application once to obtain the wiring + call trace.
	caseCfg := repro.DefaultCaseStudy()
	caseCfg.App.Mesh.BaseNx, caseCfg.App.Mesh.BaseNy = 48, 12
	caseCfg.App.Mesh.TileNx, caseCfg.App.Mesh.TileNy = 12, 6
	caseCfg.App.Driver.Steps = 8
	fmt.Println("running case study to record the call trace...")
	res, err := repro.RunCaseStudy(caseCfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Measure each component over a size sweep and fit Eq. 1 models.
	models := map[repro.Kernel]*repro.ComponentModel{}
	for _, k := range []repro.Kernel{repro.KernelStates, repro.KernelGodunov, repro.KernelEFM} {
		fmt.Printf("sweeping %s...\n", k)
		scfg := repro.DefaultSweep(k)
		scfg.Reps = 2
		scfg.World.Procs = 2
		sw, err := repro.RunSweep(scfg)
		if err != nil {
			log.Fatal(err)
		}
		cm, err := repro.FitModels(sw)
		if err != nil {
			log.Fatal(err)
		}
		models[k] = cm
		fmt.Printf("  fitted mean model: T = %s\n", cm.Mean)
	}

	// 3. Build the dual and print it.
	dual := repro.BuildDual(res, models)
	fmt.Println("\napplication dual (Fig. 10):")
	if err := dual.WriteDOT(os.Stdout, "dual"); err != nil {
		log.Fatal(err)
	}

	// 4. Optimize the assembly at a production problem size.
	for _, q := range []float64{1_000, 100_000} {
		trial := repro.BuildDual(res, models)
		for _, name := range []string{"g_proxy", "sc_proxy"} {
			if v := trial.Vertex(name); v != nil {
				nv := *v
				nv.Q = q
				trial.AddVertex(nv)
			}
		}
		opt := &repro.Optimizer{
			Dual:  trial,
			Slots: []assembly.Slot{repro.FluxSlot("g_proxy", models[repro.KernelGodunov], models[repro.KernelEFM])},
		}
		best, ranking, err := opt.Optimize()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nworkload Q=%.0f:\n", q)
		for _, r := range ranking {
			fmt.Printf("  %-12s predicted cost %12.0f us (QoS %.2f)\n",
				r.Choice["g_proxy"], r.Cost, r.MinQoS)
		}
		fmt.Printf("  performance-optimal: %s\n", best.Choice["g_proxy"])

		opt.MinQoS = 0.9 // the scientists insist on Godunov-grade accuracy
		bestQoS, _, err := opt.Optimize()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  with QoS >= 0.9:     %s\n", bestQoS.Choice["g_proxy"])
	}
}
