// Adaptive demonstrates the paper's Section 6 "dynamic performance
// optimization": an AdaptiveFlux component forwards to GodunovFlux while
// its measured per-call times meet the fitted model's expectation, and
// switches to EFMFlux online the moment the expectation is violated for a
// sustained window. Here the expectation is deliberately fitted on small
// patches and then the workload grows past the cache, so the primary's
// measured times blow through the tolerance mid-run.
package main

import (
	"fmt"
	"log"

	"repro/internal/cca"
	"repro/internal/components"
	"repro/internal/euler"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
)

func main() {
	wcfg := mpi.DefaultConfig()
	wcfg.Procs = 1
	w := mpi.NewWorld(wcfg)
	err := cca.RunSCMD(w, func(f *cca.Framework, r *mpi.Rank) error {
		// Expectation: Godunov stays near its small-patch cost. Larger
		// patches exceed this model once the cache overflows.
		expect := perfmodel.Poly{Coeffs: []float64{0, 0.25}} // 0.25 us/cell

		var adaptor *components.AdaptiveFlux
		f.RegisterClass("GodunovFlux", components.NewGodunovFlux)
		f.RegisterClass("EFMFlux", components.NewEFMFlux)
		f.RegisterClass("AdaptiveFlux", func() cca.Component {
			adaptor = &components.AdaptiveFlux{Expectation: expect, Tolerance: 1.15, Window: 3}
			return adaptor
		})
		script := `
instantiate GodunovFlux god0
instantiate EFMFlux efm0
instantiate AdaptiveFlux adaptive0
connect adaptive0 primary god0 flux
connect adaptive0 fallback efm0 flux
`
		if err := f.RunScript(script); err != nil {
			return err
		}
		port, err := f.LookupProvides("adaptive0", "flux")
		if err != nil {
			return err
		}
		fp := port.(components.FluxPort)

		proc := r.Proc
		pr := euler.DefaultShockInterface()
		for _, side := range []int{32, 64, 128, 384, 384, 384, 384, 384} {
			b := euler.NewBlock(proc, side, side, 2)
			pr.InitBlock(b, 0, 0, pr.Lx/float64(side), pr.Ly/float64(side))
			b.FillBoundary(true, true, true, true)
			qL := euler.NewEdgeField(proc, side, side, euler.Y)
			qR := euler.NewEdgeField(proc, side, side, euler.Y)
			fl := euler.NewEdgeField(proc, side, side, euler.Y)
			euler.States(proc, b, euler.Y, qL, qR)
			t0 := proc.Now()
			fp.Compute(qL, qR, fl)
			fmt.Printf("patch %3dx%-3d (Q=%6d): %9.1f us  expectation %9.1f us  switched=%v\n",
				side, side, side*side, proc.Now()-t0,
				expect.Predict(float64(side*side)), adaptor.Switched())
		}
		if adaptor.Switched() {
			fmt.Println("\nexpectation violated for a sustained window: the assembly now runs EFMFlux")
		} else {
			fmt.Println("\nexpectation held: the assembly kept GodunovFlux")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
