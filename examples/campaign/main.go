// Campaign: run a parameter-grid study of the States kernel as one
// parallel, streaming, checkpointed campaign — the paper's Section 6
// outlook ("the coefficients should be parameterized by processor speed
// and a cache model") scaled to many scenarios at once.
//
// A Grid cross-products cache sizes with seed replications into
// independent simulated-machine jobs. Each job streams its telemetry rows
// into a sink (here a CSV-shard sink teed with an on-the-fly aggregator)
// and checkpoints its fitted model into a content-addressed store, then
// drops its raw sweep: memory stays bounded as the grid grows, and
// re-running the example resumes from the store, executing zero completed
// scenarios while producing identical output.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"repro"
)

func main() {
	// A reduced States sweep keeps the demo quick.
	base := repro.DefaultSweep(repro.KernelStates)
	base.Sizes = base.Sizes[:6]
	base.Reps = 2
	base.World.Procs = 2

	g := repro.Grid{
		Base:         base.World,
		CacheKBs:     []int{128, 256, 512, 1024},
		Replications: 2,
		BaseSeed:     1,
	}
	fmt.Printf("campaign: %d scenarios on %d workers\n", len(g.Scenarios()), runtime.NumCPU())

	// Streamed results: one CSV shard per scenario plus running aggregates,
	// checkpointed under a cache directory for cheap re-runs.
	outDir := "campaign-out"
	shards, err := repro.NewCSVShardSink(filepath.Join(outDir, "rows"))
	if err != nil {
		log.Fatal(err)
	}
	agg := repro.NewAggSink()
	st, err := repro.OpenStore(filepath.Join(outDir, ".cache"))
	if err != nil {
		log.Fatal(err)
	}
	cc := repro.CampaignConfig{
		Store: st,
		Sink:  repro.NewTee(shards, agg),
		OnProgress: func(e repro.CampaignEvent) {
			status := "ok"
			if e.Cached {
				status = "ok (from checkpoint)"
			}
			if e.Err != nil {
				status = e.Err.Error()
			}
			fmt.Printf("  [%2d/%2d] %-22s %8.2fs  %s\n",
				e.Done, e.Total, e.Key, e.Elapsed.Seconds(), status)
		},
	}
	pts, err := repro.StreamSweepGrid(context.Background(), cc, base, g)
	if err != nil {
		log.Fatal(err)
	}
	if err := shards.Close(); err != nil {
		log.Fatal(err)
	}

	// The streamed aggregates: per-scenario wall-time statistics computed
	// on the fly, no raw rows retained.
	fmt.Println("\nstreamed wall_us aggregates (per scenario):")
	for _, key := range agg.Keys() {
		if s, ok := agg.Stat(key, "wall_us"); ok {
			fmt.Printf("  %-24s n=%4d  mean=%10.2f  sd=%10.2f\n", key, s.N, s.Mean, s.StdDev)
		}
	}

	// The cross-scenario trend: the functional form stays a power law
	// while the coefficients move with the cache size — and the trend fit
	// turns that movement into a model of its own.
	reports, err := repro.BuildTrends(pts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := repro.WriteTrendReport(os.Stdout, reports); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscenario rows under %s, checkpoints under %s — re-run me: zero scenarios re-execute\n",
		filepath.Join(outDir, "rows"), filepath.Join(outDir, ".cache"))
}
