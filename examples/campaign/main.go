// Campaign: run a parameter-grid study of the States kernel as one
// parallel campaign — the paper's Section 6 outlook ("the coefficients
// should be parameterized by processor speed and a cache model") scaled to
// many scenarios at once.
//
// A Grid cross-products cache sizes with seed replications into
// independent simulated-machine jobs; the campaign engine runs them on a
// worker pool with per-scenario deterministic seeds, so the study's output
// is identical no matter how many workers execute it.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"repro"
)

func main() {
	// A reduced States sweep keeps the demo quick.
	base := repro.DefaultSweep(repro.KernelStates)
	base.Sizes = base.Sizes[:6]
	base.Reps = 2
	base.World.Procs = 2

	g := repro.Grid{
		Base:         base.World,
		CacheKBs:     []int{128, 256, 512, 1024},
		Replications: 2,
		BaseSeed:     1,
	}
	fmt.Printf("campaign: %d scenarios on %d workers\n", len(g.Scenarios()), runtime.NumCPU())

	cc := repro.CampaignConfig{
		OnProgress: func(e repro.CampaignEvent) {
			status := "ok"
			if e.Err != nil {
				status = e.Err.Error()
			}
			fmt.Printf("  [%2d/%2d] %-18s %8.2fs  %s\n",
				e.Done, e.Total, e.Key, e.Elapsed.Seconds(), status)
		},
	}
	pts, err := repro.RunSweepGrid(context.Background(), cc, base, g)
	if err != nil {
		log.Fatal(err)
	}

	// The functional form stays a power law while the coefficients move
	// with the cache size — averaged over replications.
	fmt.Println("\nfitted States mean models by cache size:")
	for i := 0; i < len(pts); i += g.Replications {
		sc := pts[i].Scenario
		fmt.Printf("  %5d kB:", sc.CacheKB)
		for r := 0; r < g.Replications; r++ {
			fmt.Printf("  r%d: T = %v", r, pts[i+r].Model.Mean)
		}
		fmt.Println()
	}

	// Determinism spot check: replay the first scenario alone and compare.
	replay, err := repro.RunSweepGrid(context.Background(),
		repro.CampaignConfig{Workers: 1}, base,
		repro.Grid{Base: g.Base, CacheKBs: g.CacheKBs[:1], Replications: 1, BaseSeed: g.BaseSeed})
	if err != nil {
		log.Fatal(err)
	}
	if fmt.Sprint(replay[0].Model.Mean) == fmt.Sprint(pts[0].Model.Mean) {
		fmt.Println("\nreplay of", pts[0].Scenario.Key, "is byte-identical: worker count never changes results")
	} else {
		fmt.Println("\nWARNING: replay diverged")
	}
}
