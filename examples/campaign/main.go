// Campaign: run a parameter-grid study of the States kernel as one
// parallel, streaming, checkpointed campaign — the paper's Section 6
// outlook ("the coefficients should be parameterized by processor speed
// and a cache model") scaled to many scenarios at once.
//
// A Grid is a list of first-class axes (Dimension values) crossed with
// seed replications. Here the grid sweeps the cache-size axis against the
// new CPU clock axis, plus a custom user-defined dimension — network load
// noise — to show that adding a machine parameter to the sweep space is
// one Dimension literal, not an API change. Each scenario streams its
// telemetry rows into a sink (a CSV-shard sink teed with an on-the-fly
// aggregator) and checkpoints its fitted model into a content-addressed
// store, then drops its raw sweep: memory stays bounded as the grid grows,
// and re-running the example resumes from the store, executing zero
// completed scenarios while producing identical output.
//
// The grid also sweeps the rank scheduler (SchedAxis: serial,
// conservative parallel, optimistic parallel, and an optimistic variant
// with a tight adaptive speculation window). That axis is seed-inert —
// paired scenarios share a derived seed — so the example verifies, from
// the streamed aggregates alone, that every parallel scenario reproduced
// its serial twin exactly: rank-level parallelism inside a world composes
// with the campaign's across-world parallelism without changing one bit
// of output.
//
// The example closes with the distributed layer: two coordinator-free
// workers (DistributedCampaignConfig: a lease manager per worker over one
// shared store) partition a second grid between themselves — the lease
// audit shows every scenario executed exactly once, and both workers
// still produce identical trend reports because each replays the other's
// checkpointed scenarios from the store.
//
// The whole run is self-observed: an Observer enabled up front records
// every campaign job, lease claim and simulated MPI rank, and the example
// ends by writing a Chrome trace (campaign-out/trace.json — load it in
// chrome://tracing or Perfetto) and printing the per-owner throughput
// report recovered from the lease audit. Observation is write-only, so
// every byte above is identical to an unobserved run.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"repro"
)

func main() {
	// Observe the whole run: the campaign engine, lease managers and
	// simulated worlds capture their instruments at construction, so the
	// observer goes in before anything else is opened.
	observer := repro.NewObserver(repro.ObserverOptions{})
	repro.EnableObserver(observer)
	defer repro.DisableObserver()

	// A reduced States sweep keeps the demo quick.
	base := repro.DefaultSweep(repro.KernelStates)
	base.Sizes = base.Sizes[:6]
	base.Reps = 2
	base.World.Procs = 2

	// A custom axis: nobody had to touch the campaign package for this.
	// Each value names itself (the key token lands in scenario keys and
	// shard file names) and mutates the scenario's machine.
	noise := repro.Dimension{Name: "load", Values: []repro.DimValue{
		{Key: "quiet", Value: 0.0, Apply: func(w *repro.WorldConfig) { w.Net.NoiseSigma = 0 }},
		{Key: "loaded", Value: 0.7, Apply: func(w *repro.WorldConfig) { w.Net.NoiseSigma = 0.7 }},
	}}

	// The scheduler axis sweeps all three modes plus an optimistic variant
	// with a tight adaptive speculation window (SchedChoice) — the window
	// only changes wall-clock behavior, so the equivalence check below
	// holds for it too.
	g := repro.Grid{
		Base: base.World,
		Axes: []repro.Dimension{
			repro.CacheAxis(128, 512),
			repro.CPUClockAxis(1, 2),
			noise,
			repro.SchedAxis(
				repro.SchedChoice{Mode: repro.SchedSerial},
				repro.SchedChoice{Mode: repro.SchedConservativeParallel},
				repro.SchedChoice{Mode: repro.SchedOptimisticParallel},
				repro.SchedChoice{Mode: repro.SchedOptimisticParallel, SpecWindowMin: 64, SpecWindowMax: 1024},
			),
		},
		Replications: 2,
		BaseSeed:     1,
	}
	scs, err := g.Scenarios()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d scenarios on %d workers\n", len(scs), runtime.NumCPU())

	// Streamed results: one CSV shard per scenario — teed with its compact
	// binary sibling (same rows, same stems, ".bin" extension; the format
	// resultsd prefers) — plus running aggregates, checkpointed under a
	// cache directory for cheap re-runs.
	outDir := "campaign-out"
	shards, err := repro.NewCSVShardSink(filepath.Join(outDir, "rows"))
	if err != nil {
		log.Fatal(err)
	}
	binShards, err := repro.NewBinShardSink(filepath.Join(outDir, "rows"))
	if err != nil {
		log.Fatal(err)
	}
	agg := repro.NewAggSink()
	st, err := repro.OpenStore(filepath.Join(outDir, ".cache"))
	if err != nil {
		log.Fatal(err)
	}
	cc := repro.CampaignConfig{
		Store: st,
		Sink:  repro.NewTee(shards, binShards, agg),
		OnProgress: func(e repro.CampaignEvent) {
			status := "ok"
			if e.Cached {
				status = "ok (from checkpoint)"
			}
			if e.Err != nil {
				status = e.Err.Error()
			}
			fmt.Printf("  [%2d/%2d] %-32s %8.2fs  %s\n",
				e.Done, e.Total, e.Key, e.Elapsed.Seconds(), status)
		},
	}
	pts, err := repro.StreamSweepGrid(context.Background(), cc, base, g)
	if err != nil {
		log.Fatal(err)
	}
	if err := shards.Close(); err != nil {
		log.Fatal(err)
	}
	if err := binShards.Close(); err != nil {
		log.Fatal(err)
	}

	// The streamed aggregates: per-scenario wall-time statistics computed
	// on the fly, no raw rows retained.
	fmt.Println("\nstreamed wall_us aggregates (per scenario):")
	for _, key := range agg.Keys() {
		if s, ok := agg.Stat(key, "wall_us"); ok {
			fmt.Printf("  %-40s n=%4d  mean=%10.2f  sd=%10.2f\n", key, s.N, s.Mean, s.StdDev)
		}
	}

	// Scheduler equivalence at scale: the sched axis is seed-inert, so a
	// "/par/" or "/opt/" scenario — including the windowed optimistic
	// variant — is the same experiment as its "/serial/" twin and must have
	// streamed identical telemetry.
	pairs, mismatches := 0, 0
	for _, key := range agg.Keys() {
		if !strings.Contains(key, "/serial/") {
			continue
		}
		s1, ok1 := agg.Stat(key, "wall_us")
		if !ok1 {
			log.Fatalf("scenario %s missing from aggregates", key)
		}
		for _, mode := range []string{"/par/", "/opt/", "/opt-w64-1024/"} {
			twin := strings.Replace(key, "/serial/", mode, 1)
			s2, ok2 := agg.Stat(twin, "wall_us")
			if !ok2 {
				log.Fatalf("scheduler twin %s missing from aggregates", twin)
			}
			pairs++
			if s1 != s2 {
				mismatches++
				fmt.Printf("  MISMATCH %s: serial %+v != %s %+v\n", key, s1, twin, s2)
			}
		}
	}
	fmt.Printf("\nscheduler equivalence: %d serial-vs-parallel scenario pairs, %d mismatches\n", pairs, mismatches)

	// The cross-scenario trends: the same grid points fit against either
	// machine axis. The functional form stays a power law while the
	// coefficients move with the cache size and the clock scale — and the
	// trend fit turns that movement into a model of its own.
	for _, axis := range []repro.TrendAxis{repro.TrendCacheKB, repro.TrendCPUClock} {
		reports, err := repro.BuildTrends(pts, axis)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := repro.WriteTrendReport(os.Stdout, reports); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nscenario rows under %s, checkpoints under %s — re-run me: zero scenarios re-execute\n",
		filepath.Join(outDir, "rows"), filepath.Join(outDir, ".cache"))

	// Results as a service: the rows directory just written is already a
	// queryable model server — cmd/resultsd wraps the same service in a
	// standalone process; here it runs in-process on a loopback port. The
	// responses are fitted-model evaluations, so they are as deterministic
	// as the campaign itself: identical rows, identical bytes.
	svc, err := repro.NewResultsService(outDir, repro.ResultsServiceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	scenario := svc.Catalog().Scenarios()[0].Name
	fmt.Printf("\nresultsd over %s (%d scenarios; first: %s):\n",
		filepath.Join(outDir, "rows"), len(svc.Catalog().Scenarios()), scenario)
	for _, query := range []string{
		"/predict?scenario=" + scenario + "&measure=mean_us&q=8000",
		"/predict?scenario=" + scenario + "&measure=response_us&model=queue&q=8000&lambda=50",
	} {
		resp, err := http.Get("http://" + ln.Addr().String() + query)
		if err != nil {
			log.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  GET %s\n%s", query, indent(body, "    "))
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}

	// Coordinator-free distribution: the same store machinery lets several
	// independent processes split one grid through lease files. Two
	// workers here (goroutines, to keep the example self-contained — real
	// fleets run "cmd/figures -distributed" processes on separate hosts
	// against an NFS store) each claim scenarios from a fresh grid; every
	// scenario runs in exactly one worker and is replayed from the store
	// by the other, so both workers end with the complete result set.
	fmt.Println("\ndistributed: two coordinator-free workers, one shared store")
	dg := repro.Grid{
		Base:         base.World,
		Axes:         []repro.Dimension{repro.CacheAxis(128, 256, 512, 1024)},
		Replications: 2,
		BaseSeed:     7,
	}
	dstore := filepath.Join(outDir, ".cache-distributed")
	var wg sync.WaitGroup
	workers := []string{"w1", "w2"}
	mgrs := make([]*repro.LeaseManager, len(workers))
	points := make([][]repro.GridPoint, len(workers))
	for i, owner := range workers {
		cc, mgr, err := repro.DistributedCampaignConfig(
			repro.CampaignConfig{Workers: 2}, dstore, owner, repro.LeaseOptions{})
		if err != nil {
			log.Fatal(err)
		}
		mgrs[i] = mgr
		wg.Add(1)
		go func() {
			defer wg.Done()
			pts, err := repro.StreamSweepGrid(context.Background(), cc, base, dg)
			if err != nil {
				log.Fatal(err)
			}
			points[i] = pts
		}()
	}
	wg.Wait()
	for i, owner := range workers {
		fmt.Printf("  %s executed %2d scenario(s), observed %d grid points\n",
			owner, len(mgrs[i].Executed()), len(points[i]))
		mgrs[i].Close()
	}
	audit, err := repro.ReadLeaseAudit(st2(dstore))
	if err != nil {
		log.Fatal(err)
	}
	dups := 0
	for _, owners := range audit {
		if len(owners) > 1 {
			dups++
		}
	}
	match := "byte-identical"
	if trendBytes(points[0]) != trendBytes(points[1]) {
		match = "MISMATCHED"
	}
	fmt.Printf("  audit: %d scenarios executed, %d duplicates; both workers' trend reports %s\n",
		len(audit), dups, match)

	// The observability dividend: the per-owner throughput table from the
	// lease audit, the per-track summary from the trace, and the trace
	// itself for chrome://tracing.
	entries, err := repro.ReadLeaseAuditEntries(st2(dstore))
	if err != nil {
		log.Fatal(err)
	}
	execs := make([]repro.OwnerExec, len(entries))
	for i, e := range entries {
		execs[i] = repro.OwnerExec{Owner: e.Owner, Key: e.Key, ElapsedUS: e.ElapsedUS, EndUnixNS: e.EndUnixNS}
	}
	fmt.Println("\nowner throughput (from the lease audit):")
	if err := repro.WriteOwnerReport(os.Stdout, execs); err != nil {
		log.Fatal(err)
	}
	tracePath := filepath.Join(outDir, "trace.json")
	f, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := observer.Tracer().WriteTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	tf, err := repro.ParseTrace(data)
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.ValidateTrace(tf); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntrace tracks (campaign workers / MPI ranks / lease owners):")
	if err := repro.WriteTrackReport(os.Stdout, tf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nChrome trace written to %s — open it in chrome://tracing or https://ui.perfetto.dev\n", tracePath)
}

// st2 reopens a store directory for the audit read.
func st2(dir string) *repro.CheckpointStore {
	st, err := repro.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	return st
}

// indent prefixes every line of a response body for the demo printout.
func indent(body []byte, prefix string) string {
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// trendBytes renders a worker's grid points as the trend CSV, the bytes
// the distributed guarantee compares.
func trendBytes(pts []repro.GridPoint) string {
	reports, err := repro.BuildTrends(pts, repro.TrendCacheKB)
	if err != nil {
		log.Fatal(err)
	}
	var buf strings.Builder
	if err := repro.WriteTrendCSV(&buf, reports); err != nil {
		log.Fatal(err)
	}
	return buf.String()
}
