// Modelfit reproduces the paper's Section 5 regression analysis (Eqs. 1-2)
// for one component: sweep the kernel through its proxy over array sizes up
// to ~150k elements in both access modes, group the samples by size, fit
// the paper's functional forms, and print the paper-vs-measured comparison
// plus the Fig. 6/7/8 data series.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/harness"
)

func main() {
	kernel := flag.String("kernel", "states", "kernel to model: states | godunov | efm")
	reps := flag.Int("reps", 3, "repetitions per size, mode and aspect")
	flag.Parse()

	var k repro.Kernel
	switch *kernel {
	case "states":
		k = repro.KernelStates
	case "godunov":
		k = repro.KernelGodunov
	case "efm":
		k = repro.KernelEFM
	default:
		log.Fatalf("unknown kernel %q", *kernel)
	}

	cfg := repro.DefaultSweep(k)
	cfg.Reps = *reps
	fmt.Printf("sweeping %s over %d sizes x %d reps on %d ranks...\n",
		k, len(cfg.Sizes), cfg.Reps, cfg.World.Procs)
	sw, err := repro.RunSweep(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d monitored invocations\n\n", len(sw.Points))

	cm, err := repro.FitModels(sw)
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.WriteModelReport(os.Stdout, cm); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-size mean/sigma series (Fig. 6/7/8 ordinates):")
	if err := harness.WriteMeanSigmaCSV(os.Stdout, cm); err != nil {
		log.Fatal(err)
	}
}
