// Shockinterface runs the paper's full case study — a Mach 1.5 shock
// hitting a perturbed Air/Freon interface on a 3-level SAMR hierarchy over
// 3 simulated ranks — and writes the Fig. 1 density snapshot (PGM), the
// Fig. 2 wiring diagram (DOT), the Fig. 3 profile and the Fig. 9
// communication series into ./out.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	cfg := repro.DefaultCaseStudy()
	res, err := repro.RunCaseStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	outDir := "out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	save := func(name string, write func(f *os.File) error) {
		f, err := os.Create(filepath.Join(outDir, name))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := write(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", filepath.Join(outDir, name))
	}

	fmt.Printf("simulation reached t=%.4f after %d coarse steps\n", res.SimTime, res.StepsTaken)
	for lev, st := range res.Stats {
		fmt.Printf("  level %d: %3d patches, %6d cells\n", lev, st.Patches, st.Cells)
	}
	fmt.Println()
	if err := res.WriteProfile(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	save("fig1_density.pgm", func(f *os.File) error { return res.WritePGM(f) })
	save("fig2_assembly.dot", func(f *os.File) error {
		_, err := f.WriteString(res.AssemblyDOT)
		return err
	})
	save("fig3_profile.txt", func(f *os.File) error { return res.WriteProfile(f) })
	save("fig9_ghost_comm.csv", func(f *os.File) error { return res.WriteGhostCommCSV(f) })
}
