// Quickstart: assemble the paper's component application with the PMM
// infrastructure interposed, run a small shock/interface simulation on one
// simulated rank, and print the TAU FUNCTION SUMMARY plus a few Mastermind
// records — the smallest end-to-end tour of the reproduction.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	cfg := repro.DefaultCaseStudy()
	// Shrink everything: one rank, a small grid, a few steps.
	cfg.World.Procs = 1
	cfg.App.Mesh.BaseNx, cfg.App.Mesh.BaseNy = 48, 12
	cfg.App.Mesh.TileNx, cfg.App.Mesh.TileNy = 24, 12
	cfg.App.Driver.Steps = 6

	res, err := repro.RunCaseStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d coarse steps to t=%.4f\n", res.StepsTaken, res.SimTime)
	for lev, st := range res.Stats {
		fmt.Printf("  level %d: %d patches, %d cells\n", lev, st.Patches, st.Cells)
	}
	fmt.Println()

	// The Fig. 3-style profile.
	if err := res.WriteProfile(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// A taste of the records the Mastermind gathered for model fitting.
	fmt.Println()
	rec := res.Record(0, "sc_proxy::compute()")
	if rec == nil {
		log.Fatal("no States records")
	}
	fmt.Printf("sc_proxy::compute() was monitored %d times; first three invocations:\n",
		len(rec.Invocations))
	for i := 0; i < 3 && i < len(rec.Invocations); i++ {
		inv := rec.Invocations[i]
		q, _ := inv.Param("Q")
		mode, _ := inv.Param("mode")
		fmt.Printf("  Q=%5.0f mode=%.0f wall=%8.2f us compute=%8.2f us\n",
			q, mode, inv.WallUS, inv.ComputeUS)
	}
}
